"""Tests for :mod:`repro.parallel.executor`.

The executor's contract is *serial reproducibility*: for any batch, any
strategy, the returned results — embeddings, stats, cache flags — and the
session's memo counters must match a serial ``query_many`` run exactly.
"""

from __future__ import annotations

import pytest

import repro.parallel.pool as pool_mod
from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.datasets.registry import dataset_names, make_dataset
from repro.exceptions import ConfigError
from repro.parallel import STRATEGIES, BatchExecutor
from repro.queries.generator import query_set

TINY_SCALE = 0.0001  # floors at ~50-vertex graphs: fast but non-degenerate
K = 4
BATCH = 8  # distinct queries; the batch duplicates some to hit the memo


def _workload(name: str):
    graph = make_dataset(name, scale=TINY_SCALE, seed=13)
    queries = list(query_set(graph, 3, BATCH, seed=17))
    # Duplicates exercise the memo/replay path alongside fresh searches.
    return graph, (queries + queries[: BATCH // 2])


def _serial_reference(graph, queries, **config_kwargs):
    session = DSQL(graph, config=DSQLConfig(k=K, **config_kwargs))
    results = session.query_many(queries)
    return session, [r.to_dict() for r in results]


def _assert_matches_serial(graph, queries, strategy, **executor_kwargs):
    ref_session, ref_dicts = _serial_reference(graph, queries)
    session = DSQL(graph, config=DSQLConfig(k=K))
    with BatchExecutor(session, strategy=strategy, jobs=2, **executor_kwargs) as executor:
        results = executor.run(queries)
    assert [r.to_dict() for r in results] == ref_dicts
    assert session.stats.query_cache_hits == ref_session.stats.query_cache_hits
    assert session.stats.query_cache_misses == ref_session.stats.query_cache_misses
    assert [r.from_cache for r in results] == [d["from_cache"] for d in ref_dicts]
    return executor


class TestSerialReproducibility:
    """Property: every registry dataset, every strategy, equals serial."""

    @pytest.mark.parametrize("dataset", dataset_names())
    @pytest.mark.parametrize("strategy", ["serial", "thread"])
    def test_matches_serial(self, dataset, strategy):
        graph, queries = _workload(dataset)
        _assert_matches_serial(graph, queries, strategy)

    @pytest.mark.slow
    @pytest.mark.parametrize("dataset", dataset_names())
    def test_process_matches_serial(self, dataset):
        graph, queries = _workload(dataset)
        _assert_matches_serial(graph, queries, "process")

    def test_process_smoke(self):
        """One unmarked fork-pool run so tier-1 covers the process path."""
        graph, queries = _workload("dblp")
        executor = _assert_matches_serial(graph, queries, "process")
        report = executor.last_report
        assert report.strategy == "process"
        assert report.chunks_retried == 0
        assert report.batch == len(queries)

    def test_small_chunks(self):
        graph, queries = _workload("dblp")
        executor = _assert_matches_serial(graph, queries, "thread", chunk_size=1)
        assert executor.last_report.chunks == executor.last_report.searches

    def test_reports_memo_replay(self):
        graph, queries = _workload("dblp")
        executor = _assert_matches_serial(graph, queries, "thread")
        report = executor.last_report
        assert report.batch == len(queries)
        # The duplicated tail must be served by replay, not re-searched.
        assert report.searches == BATCH


class TestMemoMirrorLRU:
    """_plan_searches must replicate _memo_answer's LRU semantics exactly."""

    def test_warm_memo_hit_refreshes_recency(self):
        # Memo warmed with [A, B] at capacity 2, then the batch [A, C, B]:
        # the replay's hit on A refreshes A's recency (move_to_end), so
        # inserting C evicts B — B is a *miss* at replay time and must be
        # planned as a search. A mirror that skips hits without reordering
        # evicts A instead, predicts B as a hit, and the replay dies on
        # fresh[B] (KeyError).
        graph, _ = _workload("dblp")
        a, b, c = list(query_set(graph, 3, 3, seed=23))
        assert len({q.canonical_key() for q in (a, b, c)}) == 3
        batch = [a, c, b]

        ref_session = DSQL(graph, config=DSQLConfig(k=K, query_cache_size=2))
        ref_session.query_many([a, b])
        ref_dicts = [r.to_dict() for r in ref_session.query_many(batch)]

        session = DSQL(graph, config=DSQLConfig(k=K, query_cache_size=2))
        session.query_many([a, b])  # warm the memo: LRU order [A, B]
        with BatchExecutor(session, strategy="thread", jobs=2) as executor:
            results = executor.run(batch)

        assert [r.to_dict() for r in results] == ref_dicts
        assert executor.last_report.searches == 2  # C fresh, B re-searched
        assert session.stats.query_cache_hits == ref_session.stats.query_cache_hits
        assert session.stats.query_cache_misses == ref_session.stats.query_cache_misses


class TestDegradation:
    def test_crashed_worker_chunk_is_retried_serially(self, monkeypatch):
        """A dead pool still yields a complete, serial-identical batch."""
        graph, queries = _workload("dblp")
        _, ref_dicts = _serial_reference(graph, queries)

        def crash(payload):
            raise RuntimeError("worker died")

        # Fork inherits the patched module state, so both the parent-side
        # future and any child that runs see the crashing worker body.
        monkeypatch.setattr(pool_mod, "_run_chunk", crash)
        session = DSQL(graph, config=DSQLConfig(k=K))
        with BatchExecutor(session, strategy="process", jobs=2) as executor:
            results = executor.run(queries)
        assert [r.to_dict() for r in results] == ref_dicts
        report = executor.last_report
        assert report.chunks_retried == report.chunks > 0


class TestValidation:
    def test_unknown_strategy(self):
        graph, _ = _workload("dblp")
        with pytest.raises(ConfigError, match="strategy"):
            BatchExecutor(graph, k=K, strategy="gpu")

    def test_bad_jobs(self):
        graph, _ = _workload("dblp")
        with pytest.raises(ConfigError, match="jobs"):
            BatchExecutor(graph, k=K, jobs=0)

    def test_bad_chunk_size(self):
        graph, _ = _workload("dblp")
        with pytest.raises(ConfigError, match="chunk_size"):
            BatchExecutor(graph, k=K, chunk_size=0)

    def test_session_and_config_conflict(self):
        graph, _ = _workload("dblp")
        session = DSQL(graph, k=K)
        with pytest.raises(ValueError):
            BatchExecutor(session, config=DSQLConfig(k=K))

    def test_strategies_constant(self):
        assert STRATEGIES == ("serial", "thread", "process")


class TestDeadlineThroughExecutor:
    def test_tiny_time_budget_truncates_but_stays_valid(self, monkeypatch):
        import repro.core.search as search_mod

        monkeypatch.setattr(search_mod, "DEADLINE_CHECK_STRIDE", 1)
        graph, queries = _workload("dblp")
        config = DSQLConfig(k=K, time_budget_ms=1e-6, validate_results=True)
        executor = BatchExecutor(graph, config=config, strategy="thread", jobs=2)
        results = executor.run(queries)
        assert len(results) == len(queries)
        assert any(r.stats.deadline_exhausted for r in results)
        assert all(not r.stats.budget_exhausted for r in results)
