"""Tests for :mod:`repro.parallel.pool` — the persistent worker pool.

What the pool must deliver over the old per-batch fork dance: workers
survive across batches (same pids, warm sessions), worker metrics flow back
into the parent registry, state is scoped per pool (two executors running
process batches concurrently do not interfere — the regression that
motivated killing the module-global session hand-off), and teardown frees
the shared segments.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
import threading
import time

import pytest

import repro.parallel.pool as pool_mod
from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.datasets.registry import make_dataset
from repro.exceptions import SharedMemoryError
from repro.graph.shared import attach_graph
from repro.observability import Instrumentation
from repro.parallel import BatchExecutor, WorkerPool
from repro.queries.generator import query_set

K = 4


def _workload(name: str, scale: float = 0.0001, queries: int = 6, seed: int = 17):
    graph = make_dataset(name, scale=scale, seed=13)
    return graph, list(query_set(graph, 3, queries, seed=seed))


def _sleep_forever(payload):  # pragma: no cover - runs in (killed) workers
    """Stand-in chunk body simulating a wedged worker. Module-level so the
    call queue can pickle it by reference."""
    time.sleep(600)


def _chunk_of(queries):
    return [(q.canonical_key(), list(q.labels), list(q.edges())) for q in queries]


class TestWorkerPool:
    def test_chunk_answers_match_serial(self):
        graph, queries = _workload("dblp")
        config = DSQLConfig(k=K)
        reference = {
            q.canonical_key(): DSQL(graph, config=config).query(q) for q in queries
        }
        with WorkerPool(graph, config, jobs=2) as pool:
            chunk = [
                (q.canonical_key(), list(q.labels), list(q.edges())) for q in queries
            ]
            pid, pairs, counters = pool.submit(chunk).result()
            assert {key: r.to_dict() for key, r in pairs} == {
                key: r.to_dict() for key, r in reference.items()
            }
            assert pid > 0
            assert counters  # the worker searched, so counters are non-empty

    def test_descriptor_is_attachable_while_pool_lives(self):
        graph, _ = _workload("dblp")
        with WorkerPool(graph, DSQLConfig(k=K), jobs=1) as pool:
            attachment = attach_graph(pool.descriptor)
            assert attachment.graph.num_edges == graph.num_edges
            attachment.close()
            assert pool.shared_nbytes > 0

    def test_close_unlinks_segments(self):
        graph, _ = _workload("dblp")
        pool = WorkerPool(graph, DSQLConfig(k=K), jobs=1)
        descriptor = pool.descriptor
        pool.close()
        with pytest.raises(SharedMemoryError):
            attach_graph(descriptor)
        pool.close()  # idempotent

    def test_leaked_pool_does_not_hang_interpreter_exit(self):
        """Regression: a pool leaked until interpreter shutdown used to
        deadlock exit — the executor's manager thread joined workers whose
        shutdown sentinel could no longer be delivered once multiprocessing
        had reaped the call queue's feeder thread. The atexit reaper kills
        leaked workers, so this script must exit promptly on its own."""
        script = textwrap.dedent(
            """
            from repro.core.config import DSQLConfig
            from repro.datasets.registry import make_dataset
            from repro.parallel import WorkerPool
            from repro.queries.generator import query_set

            graph = make_dataset("dblp", scale=0.0001, seed=13)
            queries = list(query_set(graph, 3, 2, seed=17))
            pool = WorkerPool(graph, DSQLConfig(k=4), jobs=2)
            chunk = [
                (q.canonical_key(), list(q.labels), list(q.edges()))
                for q in queries
            ]
            pool.submit(chunk).result()  # workers are alive now
            print("OK", flush=True)
            # deliberately no pool.close(): leak it into interpreter exit
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout

    def test_graceful_close_gives_up_on_wedged_worker(self, monkeypatch):
        """Regression: fork can wedge a worker at birth (a lock another
        parent thread held at fork time stays locked forever in the child),
        and a wedged worker never reads its shutdown sentinel. A graceful
        close must bound its join and kill stragglers, not hang forever."""
        graph, queries = _workload("dblp", queries=2)
        monkeypatch.setattr(pool_mod, "_run_chunk", _sleep_forever)
        monkeypatch.setattr(pool_mod.WorkerPool, "shutdown_grace_s", 0.5)
        pool = WorkerPool(graph, DSQLConfig(k=K), jobs=1)
        descriptor = pool.descriptor
        pool.submit(_chunk_of(queries))  # the worker wedges in its chunk
        start = time.monotonic()
        pool.close()  # graceful path: grace window, then kill
        assert time.monotonic() - start < 30
        with pytest.raises(SharedMemoryError):
            attach_graph(descriptor)  # segments were still unlinked


class TestWedgedPoolDegradation:
    def test_wedged_pool_times_out_and_batch_degrades(self, monkeypatch):
        """A pool whose workers are all stuck must not hang run(): the chunk
        wait times out, the pool is killed, and the batch completes serially
        with results identical to query_many."""
        graph, queries = _workload("dblp", queries=4)
        monkeypatch.setattr(pool_mod, "_run_chunk", _sleep_forever)
        monkeypatch.setattr(BatchExecutor, "pool_timeout_s", 2.0)
        reference = [
            r.to_dict() for r in DSQL(graph, config=DSQLConfig(k=K)).query_many(queries)
        ]
        session = DSQL(graph, config=DSQLConfig(k=K))
        with BatchExecutor(session, strategy="process", jobs=2) as executor:
            results = executor.run(queries)
            assert [r.to_dict() for r in results] == reference
            report = executor.last_report
            assert report.chunks_retried == report.chunks > 0
            assert executor.pool is None  # the wedged pool was discarded


class TestExecutorPoolPersistence:
    def test_pool_and_worker_pids_survive_across_batches(self):
        graph, queries = _workload("dblp", queries=8)
        session = DSQL(graph, config=DSQLConfig(k=K, query_cache_size=0))
        with BatchExecutor(session, strategy="process", jobs=2) as executor:
            executor.run(queries)
            first_pool = executor.pool
            first_pids = {pid for pid, _ in executor.last_report.per_worker}
            executor.run(queries)
            assert executor.pool is first_pool
            second_pids = {pid for pid, _ in executor.last_report.per_worker}
            assert first_pids and second_pids <= first_pids

    def test_per_worker_rows_cover_all_searches(self):
        graph, queries = _workload("dblp", queries=8)
        session = DSQL(graph, config=DSQLConfig(k=K))
        with BatchExecutor(
            session, strategy="process", jobs=2, chunk_size=2
        ) as executor:
            executor.run(queries)
            report = executor.last_report
            assert sum(n for _, n in report.per_worker) == report.searches

    def test_worker_counters_merged_into_parent_registry(self):
        graph, queries = _workload("dblp")
        instr = Instrumentation()
        session = DSQL(graph, config=DSQLConfig(k=K), instrumentation=instr)
        with BatchExecutor(session, strategy="process", jobs=2) as executor:
            executor.run(queries)
        merged = instr.metrics.counters_snapshot()
        # The searches ran in worker processes; without the merge the
        # parent registry would only hold executor.* bookkeeping.
        assert any(name.startswith("search.") for name in merged), merged

    def test_unavailable_pool_degrades_to_in_process(self, monkeypatch):
        graph, queries = _workload("dblp")

        def refuse(graph, config, jobs):
            raise SharedMemoryError("forced unavailable")

        monkeypatch.setattr(
            "repro.parallel.executor.WorkerPool",
            refuse,
        )
        session = DSQL(graph, config=DSQLConfig(k=K))
        reference = [
            r.to_dict() for r in DSQL(graph, config=DSQLConfig(k=K)).query_many(queries)
        ]
        with BatchExecutor(session, strategy="process", jobs=2) as executor:
            results = executor.run(queries)
            assert [r.to_dict() for r in results] == reference
            report = executor.last_report
            assert report.chunks_retried == report.chunks > 0
            assert executor.pool is None


class TestConcurrentExecutors:
    @pytest.mark.slow
    def test_two_process_executors_race_on_different_graphs(self):
        """Regression: the old module-global session hand-off let one
        executor's fork inherit the *other* executor's session when two
        process batches overlapped. Pools scope worker state via initargs,
        so racing batches on different graphs must both match serial."""
        graph_a, queries_a = _workload("dblp", queries=6, seed=17)
        graph_b, queries_b = _workload("yeast", queries=6, seed=23)
        ref_a = [
            r.to_dict() for r in DSQL(graph_a, config=DSQLConfig(k=K)).query_many(queries_a)
        ]
        ref_b = [
            r.to_dict() for r in DSQL(graph_b, config=DSQLConfig(k=K)).query_many(queries_b)
        ]
        out = {}
        errors = []
        barrier = threading.Barrier(2)

        def run(name, graph, queries):
            try:
                session = DSQL(graph, config=DSQLConfig(k=K))
                with BatchExecutor(
                    session, strategy="process", jobs=2, chunk_size=1
                ) as executor:
                    barrier.wait(timeout=30)
                    for _ in range(3):
                        session._query_cache.clear()
                        out[name] = [r.to_dict() for r in executor.run(queries)]
            except Exception as exc:  # pragma: no cover - failure surfaced below
                errors.append((name, exc))

        threads = [
            threading.Thread(target=run, args=("a", graph_a, queries_a)),
            threading.Thread(target=run, args=("b", graph_b, queries_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors, errors
        assert out["a"] == ref_a
        assert out["b"] == ref_b
