"""Shared-memory staleness under live mutation: fail loudly, never lie.

Workers attached to a published graph may lag the parent by delta
mutations (they catch up by replaying the ops tail shipped with each
chunk) but can never survive a *compaction*: the parent's arrays were
rebuilt, the worker's segment snapshot is of a dead epoch, and the only
acceptable outcome is :class:`~repro.exceptions.StaleSegmentError` — a
wrong answer computed from the old topology is the one forbidden result.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.datasets.registry import make_dataset
from repro.exceptions import StaleSegmentError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.shared import attach_graph, publish_graph
from repro.parallel import BatchExecutor, WorkerPool
from repro.queries.generator import query_set

K = 4


def _workload(scale: float = 0.0001, queries: int = 4):
    graph = make_dataset("dblp", scale=scale, seed=13)
    return graph, list(query_set(graph, 3, queries, seed=17))


def _chunk_of(session: DSQL, queries):
    return [(session.memo_key(q), list(q.labels), list(q.edges())) for q in queries]


def _absent_pair(graph):
    u = 0
    v = next(x for x in range(1, graph.num_vertices) if not graph.has_edge(u, x))
    return u, v


class TestWorkerCatchUp:
    def test_workers_replay_delta_tail(self):
        graph, queries = _workload()
        config = DSQLConfig(k=K)
        session = DSQL(graph, config=config)
        with WorkerPool(graph, config, jobs=2) as pool:
            pid, pairs, _ = pool.submit(_chunk_of(session, queries)).result()
            u, v = _absent_pair(graph)
            graph.add_edge(u, v)
            graph.add_vertex("zz")
            # Workers at the old delta_seq must replay the tail and answer
            # against the post-mutation topology.
            _, pairs_after, _ = pool.submit(_chunk_of(session, queries)).result()
            rebuilt = LabeledGraph(list(graph.labels), list(graph.edges()), backend="csr")
            reference = DSQL(rebuilt, config=config)
            want = {q.canonical_key(): reference.query(q) for q in queries}
            got = {key[1]: r for key, r in pairs_after}
            assert {k: r.to_dict() for k, r in got.items()} == {
                k: r.to_dict() for k, r in want.items()
            }

    def test_publish_compacts_dirty_overlay(self):
        graph, _ = _workload()
        u, v = _absent_pair(graph)
        graph.add_edge(u, v)
        assert graph.backend.delta_size == 1
        published = publish_graph(graph)
        try:
            # Publication is a compaction point: the overlay was merged so
            # the published arrays carry the live topology.
            assert graph.backend.delta_size == 0
            attachment = attach_graph(published.descriptor)
            assert attachment.graph.has_edge(u, v)
            assert attachment.graph.num_edges == graph.num_edges
            attachment.close()
        finally:
            published.close()
            published.unlink()


class TestCompactionStaleness:
    def test_pool_goes_stale_on_compaction(self):
        graph, queries = _workload()
        config = DSQLConfig(k=K)
        session = DSQL(graph, config=config)
        with WorkerPool(graph, config, jobs=1) as pool:
            pool.submit(_chunk_of(session, queries)).result()
            assert pool.stale is False
            u, v = _absent_pair(graph)
            graph.add_edge(u, v)
            graph.compact()
            assert pool.stale is True
            with pytest.raises(StaleSegmentError):
                pool.submit(_chunk_of(session, queries))

    def test_attach_rejects_delta_seq_mismatch(self):
        graph, _ = _workload()
        published = publish_graph(graph)
        try:
            skewed = dataclasses.replace(published.descriptor, delta_seq=7)
            with pytest.raises(StaleSegmentError):
                attach_graph(skewed)
        finally:
            published.close()
            published.unlink()

    def test_executor_rebuilds_pool_after_compaction(self):
        graph, queries = _workload()
        config = DSQLConfig(k=K)
        session = DSQL(graph, config=config)
        executor = BatchExecutor(session, strategy="process", jobs=2)
        try:
            executor.run(queries)
            u, v = _absent_pair(graph)
            graph.add_edge(u, v)
            graph.compact()
            # The executor notices the stale pool, republisher included —
            # answers must match a from-scratch session, with no retries
            # leaking a pre-compaction result.
            results = executor.run(queries)
            rebuilt = LabeledGraph(list(graph.labels), list(graph.edges()), backend="csr")
            reference = DSQL(rebuilt, config=config)
            for got, want in zip(results, reference.query_many(queries)):
                assert got.embeddings == want.embeddings
                assert got.coverage == want.coverage
        finally:
            executor.close()
