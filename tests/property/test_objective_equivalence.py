"""The objective seam changes nothing under ``objective="vertex"``.

Two pins:

1. **Golden gate** — ``tests/data/objective_vertex_goldens.json`` holds one
   digest per (registry dataset × backend × plans on/off × query), captured
   on the pre-seam pipeline. The default-objective pipeline must reproduce
   every digest bit-for-bit: embeddings, coverage, level, optimality
   *reason*, node expansions, and Phase-2 activity all feed the hash, so a
   single off-by-one anywhere in the refactored dispatch trips the gate.

2. **Scratch-helper property** — the module-level ``coverage``/``benefit``/
   ``loss`` helpers and :class:`CoverageTracker` are two implementations of
   the same algebra; hypothesis pins them to each other on random element
   collections, including duplicate members and non-vertex (edge-style
   tuple) elements.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.coverage.core import CoverageTracker, benefit, coverage, loss
from repro.datasets.registry import dataset_names, make_dataset
from repro.queries.generator import query_set

GOLDENS = json.loads(
    (Path(__file__).resolve().parent.parent / "data" / "objective_vertex_goldens.json")
    .read_text(encoding="utf-8")
)


def result_digest(r) -> str:
    """The capture-time recipe, frozen: change it and every golden lies."""
    return hashlib.sha256(
        repr(
            (
                r.embeddings,
                r.coverage,
                r.level,
                r.optimal,
                r.optimal_reason,
                r.stats.nodes_expanded,
                r.stats.phase2_ran,
                r.stats.phase2_swaps,
            )
        ).encode()
    ).hexdigest()[:16]


def test_goldens_cover_full_matrix():
    datasets = dataset_names()
    assert len(GOLDENS) == len(datasets) * 2 * 2 * 3
    for ds in datasets:
        for backend in ("csr", "set"):
            for plans in ("on", "off"):
                for i in range(3):
                    assert f"{ds}|{backend}|plans={plans}|q{i}" in GOLDENS


@pytest.mark.parametrize("dataset", dataset_names())
def test_vertex_objective_matches_preseam_goldens(dataset):
    base = make_dataset(dataset, scale=0.001, seed=7)
    queries = query_set(base, 3, 3, seed=11)
    for backend in ("csr", "set"):
        graph = base.with_backend(backend)
        for plans in (True, False):
            session = DSQL(
                graph, config=DSQLConfig(k=4, node_budget=200_000, use_plans=plans)
            )
            for i, query in enumerate(queries):
                key = f"{dataset}|{backend}|plans={'on' if plans else 'off'}|q{i}"
                assert result_digest(session.query(query)) == GOLDENS[key], key


# ----------------------------------------------------------------------
# Scratch helpers == CoverageTracker, element-type-agnostic.
# ----------------------------------------------------------------------
vertex_elements = st.integers(min_value=0, max_value=12)
edge_elements = st.tuples(
    st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=6)
)


def collections(element):
    members = st.frozensets(element, min_size=0, max_size=5)
    return st.lists(members, min_size=1, max_size=6).flatmap(
        # Re-append a prefix so duplicate members are common, not rare.
        lambda ms: st.integers(min_value=0, max_value=len(ms)).map(lambda d: ms + ms[:d])
    )


@pytest.mark.parametrize("element", [vertex_elements, edge_elements], ids=["vertex", "edge"])
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_tracker_matches_scratch_helpers(element, data):
    members = data.draw(collections(element))
    tracker = CoverageTracker(members)
    assert tracker.coverage == coverage(members)
    probe = data.draw(st.frozensets(element, min_size=0, max_size=5))
    assert tracker.benefit(probe) == benefit(probe, members)
    for i, slot in enumerate(tracker.slots()):
        assert tracker.loss(slot) == loss(members, i)
        # loss_plus discounts the private elements that `probe` re-covers.
        others = set().union(*(m for j, m in enumerate(members) if j != i), set())
        private = set(members[i]) - others
        assert tracker.loss_plus(slot, probe) == len(private - probe)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_tracker_churn_keeps_scratch_equivalence(data):
    members = data.draw(collections(vertex_elements))
    tracker = CoverageTracker(members)
    slots = list(tracker.slots())
    drops = data.draw(
        st.lists(st.sampled_from(slots), unique=True, max_size=len(slots))
    )
    for slot in drops:
        tracker.remove(slot)
    remaining = tracker.members()
    assert tracker.coverage == coverage(remaining)
    for i, slot in enumerate(tracker.slots()):
        assert tracker.loss(slot) == loss(remaining, i)
