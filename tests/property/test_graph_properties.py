"""Property-based tests for the graph substrate."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder, relabel
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.statistics import compute_statistics, label_histogram


@st.composite
def labeled_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    labels = draw(
        st.lists(st.sampled_from("abcd"), min_size=n, max_size=n)
    )
    max_edges = n * (n - 1) // 2
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(all_pairs), max_size=max_edges)) if all_pairs else []
    return LabeledGraph(labels, edges)


class TestGraphInvariants:
    @given(labeled_graphs())
    def test_handshake_lemma(self, g):
        assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges

    @given(labeled_graphs())
    def test_edges_unique_normalized(self, g):
        edges = list(g.edges())
        assert len(edges) == len(set(edges)) == g.num_edges
        assert all(u < v for u, v in edges)

    @given(labeled_graphs())
    def test_adjacency_symmetric(self, g):
        for u, v in g.edges():
            assert u in g.neighbors(v) and v in g.neighbors(u)

    @given(labeled_graphs())
    def test_label_index_partition(self, g):
        idx = g.label_index()
        all_vertices = sorted(v for bucket in idx.values() for v in bucket)
        assert all_vertices == list(g.vertices())

    @given(labeled_graphs())
    def test_signature_matches_definition(self, g):
        for v in g.vertices():
            expected = frozenset(g.label(w) for w in g.neighbors(v))
            assert g.neighborhood_signature(v) == expected

    @given(labeled_graphs())
    def test_components_partition_vertices(self, g):
        comps = g.connected_components()
        flattened = sorted(v for comp in comps for v in comp)
        assert flattened == list(g.vertices())

    @given(labeled_graphs())
    def test_statistics_consistency(self, g):
        s = compute_statistics(g)
        assert s.num_vertices == g.num_vertices
        assert s.num_edges == g.num_edges
        assert sum(label_histogram(g).values()) == g.num_vertices

    @given(labeled_graphs())
    def test_induced_full_subgraph_is_identity(self, g):
        sub = g.induced_subgraph(g.vertices())
        assert list(sub.labels) == list(g.labels)
        assert set(sub.edges()) == set(g.edges())

    @given(labeled_graphs())
    def test_relabel_roundtrip(self, g):
        g2 = relabel(g, list(g.labels))
        assert set(g2.edges()) == set(g.edges())


class TestBuilderProperties:
    @given(st.lists(st.sampled_from("ab"), min_size=2, max_size=10), st.data())
    def test_builder_build_matches_inserts(self, labels, data):
        b = GraphBuilder()
        b.add_vertices(labels)
        n = len(labels)
        pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        chosen = data.draw(st.lists(st.sampled_from(pairs), max_size=len(pairs)))
        b.add_edges(chosen)
        g = b.build()
        assert g.num_edges == len(set(chosen))
        for u, v in chosen:
            assert g.has_edge(u, v)
