"""Property-based tests: the SQ engine equals brute force on random inputs."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.isomorphism.qsearch import enumerate_embeddings

from tests.conftest import brute_force_embeddings


@st.composite
def sq_instances(draw):
    n = draw(st.integers(min_value=3, max_value=14))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    labels = [f"L{rng.randrange(3)}" for _ in range(n)]
    edges = [
        (u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < 0.35
    ]
    graph = LabeledGraph(labels, edges)
    if graph.num_edges == 0:
        return graph, QueryGraph([labels[0]])
    from repro.exceptions import DatasetError
    from repro.queries.generator import random_query

    z = min(draw(st.integers(min_value=1, max_value=4)), graph.num_edges)
    while z >= 1:
        try:
            return graph, random_query(graph, z, rng=rng)
        except DatasetError:
            # No connected z-edge subgraph exists (tiny components); shrink.
            z -= 1
    return graph, QueryGraph([labels[0]])


@settings(max_examples=80, deadline=None)
@given(sq_instances())
def test_engine_equals_brute_force(instance):
    graph, query = instance
    assert set(enumerate_embeddings(graph, query)) == set(
        brute_force_embeddings(graph, query)
    )


@settings(max_examples=50, deadline=None)
@given(sq_instances())
def test_distinct_vertex_set_mode_is_projection(instance):
    graph, query = instance
    full = enumerate_embeddings(graph, query)
    distinct = enumerate_embeddings(graph, query, distinct_vertex_sets=True)
    assert {frozenset(m) for m in distinct} == {frozenset(m) for m in full}
    assert len({frozenset(m) for m in distinct}) == len(distinct)


@settings(max_examples=50, deadline=None)
@given(sq_instances(), st.integers(min_value=1, max_value=5))
def test_limit_is_prefix(instance, limit):
    graph, query = instance
    full = enumerate_embeddings(graph, query)
    limited = enumerate_embeddings(graph, query, limit=limit)
    assert limited == full[:limit]
