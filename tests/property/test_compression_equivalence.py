"""Compression on vs off: every engine must be result-*identical*.

The twin-class integration (``DSQLConfig.use_compression``) is a pure
mechanism change, exactly like plans-on/off: the class-level join masks and
the ``cbitset`` expansion kernel may change *how* candidate pools and join
tests are computed, but never which candidates are iterated, in what order,
or when budget charges fire. These tests pin that contract — DSQL end to
end across every registry dataset, both storage backends, both SQ engine
families, all objectives, random hypothesis instances, and across mutation
batches (split-repaired partition ≡ rebuilt-from-scratch graph).
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.datasets.registry import dataset_names, make_dataset
from repro.exceptions import ConfigError, DatasetError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.plans import compile_plan
from repro.isomorphism.optimized import OptimizedQSearchEngine
from repro.isomorphism.qsearch import QSearchEngine
from repro.kernels import CBITSET
from repro.queries.generator import query_set
from tests.property.test_mutation_equivalence import (
    assert_results_identical,
    mutation_script,
    rebuilt_twin,
)

COMP_ON = {"use_compression": True}


def assert_stats_parity(r_on, r_off):
    """Beyond the result view: identical candidate charges either way."""
    assert r_on.stats.nodes_expanded == r_off.stats.nodes_expanded
    assert r_on.stats.embeddings_found == r_off.stats.embeddings_found


@pytest.mark.parametrize("dataset", dataset_names())
@pytest.mark.parametrize("backend", ["csr", "set"])
def test_compression_identical_on_registry_dataset(dataset, backend):
    graph = make_dataset(dataset, scale=0.002, seed=7)
    if backend != graph.backend_name:
        graph = graph.with_backend(backend)
    queries = query_set(graph, 3, 3, seed=11)
    config = DSQLConfig(k=4, node_budget=200_000)
    off = DSQL(graph, config=config)
    on = DSQL(graph, config=replace(config, **COMP_ON))
    for query in queries:
        r_on, r_off = on.query(query), off.query(query)
        assert_results_identical(r_on, r_off)
        assert_stats_parity(r_on, r_off)


@pytest.mark.parametrize("objective", ["vertex", "edge", "weighted-vertex"])
def test_compression_identical_across_objectives(objective):
    graph = make_dataset("imdb", scale=0.002, seed=3)
    queries = query_set(graph, 4, 3, seed=5)
    config = DSQLConfig(k=5, objective=objective, node_budget=200_000)
    off = DSQL(graph, config=config)
    on = DSQL(graph, config=replace(config, **COMP_ON))
    for query in queries:
        r_on, r_off = on.query(query), off.query(query)
        assert_results_identical(r_on, r_off)
        assert_stats_parity(r_on, r_off)


def test_use_compression_requires_plans():
    with pytest.raises(ConfigError):
        DSQLConfig(k=3, use_plans=False, use_compression=True)


# ----------------------------------------------------------------------
# Pinned twin-rich instance: the cbitset kernel must actually fire.
# ----------------------------------------------------------------------
def casting_instance():
    """An affiliation graph with heavy twin redundancy and a 4-cycle query.

    Groups of actors attached to the same pair of movies are false twins;
    the ``A`` pool is large enough for the bitset threshold and compresses
    ~3x, so a compression-enabled plan must upgrade the cycle-closing depth
    to ``cbitset``.
    """
    rng = random.Random(7)
    labels = []
    edges = []
    movies = [len(labels) + i for i in range(40)]
    labels.extend("M" for _ in movies)
    for _ in range(120):
        a, b = rng.sample(movies, 2)
        for _ in range(3):
            v = len(labels)
            labels.append("A")
            edges.append((v, a))
            edges.append((v, b))
    graph = LabeledGraph(labels, edges)
    query = QueryGraph(["M", "A", "M", "A"], [(0, 1), (1, 2), (2, 3), (3, 0)])
    return graph, query


def test_cbitset_kernel_fires_and_stays_identical():
    graph, query = casting_instance()
    cache = graph.index_cache()
    assert cache.compressed().compression_ratio() < 0.6

    plan = compile_plan(query, cache, use_compression=True)
    assert CBITSET in plan.kernels

    # SQ engines: stream-for-stream identical, with cbitset dispatched.
    for engine_cls in (QSearchEngine, OptimizedQSearchEngine):
        plain = list(engine_cls(graph, query).embeddings())
        planned_engine = engine_cls(graph, query, plan=plan)
        planned = list(planned_engine.embeddings())
        assert planned == plain
        assert planned_engine.kernel_dispatch[CBITSET] > 0

    # DSQL end to end: identical results, compressed join frames counted.
    config = DSQLConfig(k=4, node_budget=500_000)
    r_off = DSQL(graph, config=config).query(query)
    r_on = DSQL(graph, config=replace(config, **COMP_ON)).query(query)
    assert_results_identical(r_on, r_off)
    assert_stats_parity(r_on, r_off)
    assert r_on.stats.kernel_cbitset > 0
    assert r_off.stats.kernel_cbitset == 0


def test_low_redundancy_plan_keeps_vertex_bitset():
    """Without twins the ratio gate must refuse the class kernel."""
    rng = random.Random(99)
    n = 120
    labels = ["X"] * n
    edges = [(u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < 0.25]
    graph = LabeledGraph(labels, edges)
    cache = graph.index_cache()
    assert cache.compressed().compression_ratio() > 0.9
    query = QueryGraph(["X", "X", "X"], [(0, 1), (1, 2), (2, 0)])
    plan = compile_plan(query, cache, use_compression=True)
    assert CBITSET not in plan.kernels
    # The toggle must still be safe end to end on a graph it cannot help.
    config = DSQLConfig(k=4, node_budget=200_000)
    r_off = DSQL(graph, config=config).query(query)
    r_on = DSQL(graph, config=replace(config, **COMP_ON)).query(query)
    assert_results_identical(r_on, r_off)
    assert_stats_parity(r_on, r_off)


# ----------------------------------------------------------------------
# Mutation: split-repaired partition ≡ rebuilt-from-scratch graph.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dataset", ["imdb", "yeast"])
def test_compression_mutate_equals_rebuild(dataset):
    graph = make_dataset(dataset, scale=0.002, seed=7)
    queries = list(query_set(graph, 3, 3, seed=11))
    config = DSQLConfig(k=4, node_budget=200_000, **COMP_ON)
    session = DSQL(graph, config=config)
    # Warm everything pre-mutation: pools, plans, the twin partition.
    session.query_many(queries)
    assert graph.index_cache()._compressed is not None

    for round_seed in (29, 31):
        ops = mutation_script(graph, random.Random(round_seed), count=25)
        graph.mutate(ops, compaction_threshold=None)
        reference = DSQL(rebuilt_twin(graph, "csr"), config=config)
        for got, want in zip(session.query_many(queries), reference.query_many(queries)):
            assert_results_identical(got, want)

    # Cross the compaction boundary: the partition survives (topology is
    # unchanged) and answers must stay bit-identical.
    graph.compact()
    reference = DSQL(rebuilt_twin(graph, "csr"), config=config)
    for got, want in zip(session.query_many(queries), reference.query_many(queries)):
        assert_results_identical(got, want)


def test_compression_mutation_on_twin_rich_instance():
    """Mutations that hit multi-member classes: split repair vs rebuild,
    and repaired-on vs off on the same mutated graph."""
    graph, query = casting_instance()
    config = DSQLConfig(k=4, node_budget=500_000, **COMP_ON)
    session = DSQL(graph, config=config)
    session.query(query)
    comp = graph.index_cache()._compressed
    assert comp is not None

    rng = random.Random(17)
    n = graph.num_vertices
    for _ in range(12):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        if graph.has_edge(u, v):
            graph.remove_edge(u, v)
        else:
            graph.add_edge(u, v)
    assert comp.split_repairs > 0

    r_live = session.query(query)
    r_rebuilt = DSQL(rebuilt_twin(graph, "csr"), config=config).query(query)
    r_off = DSQL(
        rebuilt_twin(graph, "csr"), config=replace(config, use_compression=False)
    ).query(query)
    assert_results_identical(r_live, r_rebuilt)
    assert_results_identical(r_live, r_off)
    assert_stats_parity(r_live, r_off)


def test_split_repair_partition_matches_fresh_build_semantics():
    """After deltas, the repaired partition must agree with a fresh build on
    everything observable: adjacency semantics and per-class uniformity.
    (The partitions themselves differ — repair only refines — so compare
    the *relation*, not the classes.)"""
    from repro.isomorphism.compression import CompressedGraph

    graph, _ = casting_instance()
    cache = graph.index_cache()
    comp = cache.compressed()
    rng = random.Random(23)
    n = graph.num_vertices
    for _ in range(10):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        if graph.has_edge(u, v):
            graph.remove_edge(u, v)
        else:
            graph.add_edge(u, v)

    assert comp is cache.compressed()  # repaired in place, not rebuilt
    # Partition invariants.
    seen = set()
    for cid, members in enumerate(comp.classes):
        for w in members:
            assert comp.class_of[w] == cid
            assert w not in seen
            seen.add(w)
        labels = {graph.label(w) for w in members}
        assert len(labels) <= 1
    assert seen == set(range(graph.num_vertices))
    # Twin symmetry against the live topology, via a vertex-level probe:
    # for sampled pairs, the class relation must equal the edge relation.
    fresh = CompressedGraph(graph)
    for _ in range(300):
        x, y = rng.randrange(n), rng.randrange(n)
        if x == y:
            continue
        cx, cy = comp.class_of[x], comp.class_of[y]
        want = graph.has_edge(x, y)
        got = comp.clique[cx] if cx == cy else cy in comp.neighbors(cx)
        assert got == want
        assert bool((comp.class_join_mask(cx) >> cy) & 1) == want
        fx, fy = fresh.class_of[x], fresh.class_of[y]
        got_fresh = fresh.clique[fx] if fx == fy else fy in fresh.neighbors(fx)
        assert got_fresh == want


# ----------------------------------------------------------------------
# Random instances
# ----------------------------------------------------------------------
@st.composite
def instances(draw):
    n = draw(st.integers(min_value=4, max_value=14))
    num_labels = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    twin_factor = draw(st.integers(min_value=1, max_value=3))
    rng = random.Random(seed)
    labels = [f"L{rng.randrange(num_labels)}" for _ in range(n)]
    edges = [(u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < 0.35]
    # Bolt on twin copies of random vertices so compressible structure is
    # actually represented in the search space.
    base_n = n
    for _ in range(twin_factor):
        src = rng.randrange(base_n)
        nbrs = {y for x, y in edges if x == src} | {x for x, y in edges if y == src}
        v = len(labels)
        labels.append(labels[src])
        edges.extend((v, w) for w in sorted(nbrs))
    graph = LabeledGraph(labels, sorted({tuple(sorted(e)) for e in edges if e[0] != e[1]}))
    if graph.num_edges == 0:
        query = QueryGraph([labels[0]])
    else:
        from repro.queries.generator import random_query

        z = min(draw(st.integers(min_value=1, max_value=3)), graph.num_edges)
        query = None
        while z >= 1:
            try:
                query = random_query(graph, z, rng=rng)
                break
            except DatasetError:
                z -= 1
        if query is None:
            query = QueryGraph([labels[0]])
    k = draw(st.integers(min_value=1, max_value=5))
    return graph, query, k


@settings(max_examples=50, deadline=None)
@given(instances())
def test_compression_identical_on_random_instances(instance):
    graph, query, k = instance
    config = DSQLConfig(k=k)
    r_off = DSQL(graph, config=config).query(query)
    r_on = DSQL(graph, config=replace(config, **COMP_ON)).query(query)
    assert_results_identical(r_on, r_off)
    assert_stats_parity(r_on, r_off)
