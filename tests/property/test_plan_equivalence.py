"""Plans on vs off: every engine must be result-*identical*.

The compiled-plan / join-kernel path is a pure mechanism change: it may
alter how candidate pools are computed (bitset AND, sorted-slice merges)
but never which candidates are iterated, in what order, or when the budget
charges fire. These tests pin that contract — DSQL end to end across every
registry dataset and both storage backends, the plain and optimized SQ
engines stream-for-stream, and random hypothesis instances.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.datasets.registry import dataset_names, make_dataset
from repro.exceptions import DatasetError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.plans import compile_plan
from repro.isomorphism.optimized import OptimizedQSearchEngine
from repro.isomorphism.qsearch import QSearchEngine
from repro.kernels import BITSET
from repro.queries.generator import query_set

PLANS_OFF = {"use_plans": False}


def assert_results_identical(r1, r2):
    assert r1.embeddings == r2.embeddings
    assert r1.coverage == r2.coverage
    assert r1.optimal == r2.optimal
    assert r1.optimal_reason == r2.optimal_reason
    assert r1.level == r2.level


@pytest.mark.parametrize("dataset", dataset_names())
@pytest.mark.parametrize("backend", ["csr", "set"])
def test_plans_identical_on_registry_dataset(dataset, backend):
    graph = make_dataset(dataset, scale=0.001, seed=7)
    if backend != graph.backend_name:
        graph = graph.with_backend(backend)
    queries = query_set(graph, 3, 3, seed=11)
    config = DSQLConfig(k=4, node_budget=200_000)
    on = DSQL(graph, config=config)
    off = DSQL(graph, config=replace(config, **PLANS_OFF))
    for query in queries:
        r_on, r_off = on.query(query), off.query(query)
        assert_results_identical(r_on, r_off)
        # The kernel counters separate the two paths beyond the result view.
        s_on, s_off = r_on.stats, r_off.stats
        assert s_on.nodes_expanded == s_off.nodes_expanded
        assert s_on.kernel_scan + s_on.kernel_merge + s_on.kernel_bitset > 0
        assert (
            s_off.kernel_scan
            + s_off.kernel_merge
            + s_off.kernel_bitset
            + s_off.kernel_scalar
            == 0
        )


@pytest.mark.parametrize("engine_cls", [QSearchEngine, OptimizedQSearchEngine])
def test_sq_engines_identical_with_plan(engine_cls):
    graph = make_dataset("yeast", scale=0.001, seed=3)
    cache = graph.index_cache()
    for query in query_set(graph, 3, 3, seed=5):
        plan = compile_plan(query, cache)
        plain = list(engine_cls(graph, query).embeddings())
        planned_engine = engine_cls(graph, query, plan=plan)
        planned = list(planned_engine.embeddings())
        assert planned == plain
        assert sum(planned_engine.kernel_dispatch.values()) > 0


def _dense_instance():
    """A dense single-label graph whose pools trip the bitset kernel."""
    rng = random.Random(99)
    n = 120
    labels = ["X"] * n
    edges = [(u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < 0.25]
    graph = LabeledGraph(labels, edges)
    query = QueryGraph(["X", "X", "X"], [(0, 1), (1, 2), (2, 0)])
    return graph, query


def test_bitset_kernel_fires_and_stays_identical():
    graph, query = _dense_instance()
    plan = compile_plan(query, graph.index_cache())
    assert BITSET in plan.kernels  # the triangle's last node has 2 backward
    planned_engine = QSearchEngine(graph, query, plan=plan)
    planned = list(planned_engine.embeddings())
    plain = list(QSearchEngine(graph, query).embeddings())
    assert planned == plain
    assert planned_engine.kernel_dispatch[BITSET] > 0

    config = DSQLConfig(k=4, node_budget=200_000)
    r_on = DSQL(graph, config=config).query(query)
    r_off = DSQL(graph, config=replace(config, **PLANS_OFF)).query(query)
    assert_results_identical(r_on, r_off)
    assert r_on.stats.kernel_bitset > 0


@st.composite
def instances(draw):
    n = draw(st.integers(min_value=4, max_value=14))
    num_labels = draw(st.integers(min_value=2, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    labels = [f"L{rng.randrange(num_labels)}" for _ in range(n)]
    edges = [(u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < 0.35]
    graph = LabeledGraph(labels, edges, backend="csr")
    if graph.num_edges == 0:
        query = QueryGraph([labels[0]])
    else:
        from repro.queries.generator import random_query

        z = min(draw(st.integers(min_value=1, max_value=3)), graph.num_edges)
        query = None
        while z >= 1:
            try:
                query = random_query(graph, z, rng=rng)
                break
            except DatasetError:
                z -= 1
        if query is None:
            query = QueryGraph([labels[0]])
    k = draw(st.integers(min_value=1, max_value=5))
    return graph, query, k


@settings(max_examples=50, deadline=None)
@given(instances())
def test_plans_identical_on_random_instances(instance):
    graph, query, k = instance
    for factory in (DSQLConfig.dsql0, lambda kk: DSQLConfig(k=kk)):
        config = factory(k)
        r_on = DSQL(graph, config=config).query(query)
        r_off = DSQL(graph, config=replace(config, **PLANS_OFF)).query(query)
        assert_results_identical(r_on, r_off)
