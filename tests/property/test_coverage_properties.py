"""Property-based tests for the coverage algebra and selection algorithms."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.core import CoverageTracker, coverage, cover_set
from repro.coverage.greedy import greedy_max_coverage
from repro.coverage.multiscan import dsq_ns
from repro.coverage.swap import Swap1, Swap2, SwapAlpha, swap_stream

embedding = st.frozensets(st.integers(min_value=0, max_value=30), min_size=1, max_size=5)
stream = st.lists(embedding, min_size=0, max_size=25)
ks = st.integers(min_value=1, max_value=6)


class TestTrackerAlgebra:
    @given(stream)
    def test_coverage_equals_union_size(self, embs):
        t = CoverageTracker(embs)
        assert t.coverage == len(cover_set(embs))

    @given(stream, embedding)
    def test_benefit_bounded_by_size(self, embs, h):
        t = CoverageTracker(embs)
        assert 0 <= t.benefit(h) <= len(h)

    @given(st.lists(embedding, min_size=1, max_size=15))
    def test_loss_sums_below_coverage(self, embs):
        """Private vertices of distinct members are disjoint."""
        t = CoverageTracker(embs)
        assert sum(t.loss(s) for s in t.slots()) <= t.coverage

    @given(st.lists(embedding, min_size=1, max_size=15), embedding)
    def test_loss_plus_at_most_loss(self, embs, h):
        t = CoverageTracker(embs)
        for slot in t.slots():
            assert t.loss_plus(slot, h) <= t.loss(slot)

    @given(st.lists(embedding, min_size=2, max_size=12))
    def test_remove_then_readd_roundtrip(self, embs):
        t = CoverageTracker(embs)
        before = t.coverage
        slot = t.slots()[0]
        member = t.remove(slot)
        t.add(member)
        assert t.coverage == before


class TestGreedyProperties:
    @given(stream, ks)
    def test_capacity_and_distinctness(self, embs, k):
        out = greedy_max_coverage(embs, k)
        assert len(out) <= k
        assert len(set(out)) == len(out)

    @given(stream, ks)
    def test_monotone_in_k(self, embs, k):
        small = coverage(greedy_max_coverage(embs, k))
        large = coverage(greedy_max_coverage(embs, k + 1))
        assert large >= small

    @given(stream, ks)
    def test_every_pick_from_input(self, embs, k):
        pool = {frozenset(e) for e in embs}
        for picked in greedy_max_coverage(embs, k):
            assert picked in pool


class TestSwapProperties:
    @given(stream, ks)
    @settings(max_examples=50)
    def test_swap_alpha_capacity(self, embs, k):
        run = swap_stream(embs, k, SwapAlpha(alpha=1.0))
        assert len(run.members) <= k
        assert run.coverage == coverage(run.members)

    @given(stream, ks)
    @settings(max_examples=50)
    def test_members_come_from_stream(self, embs, k):
        pool = {frozenset(e) for e in embs}
        for cond in (Swap1(), Swap2(), SwapAlpha()):
            run = swap_stream(embs, k, cond)
            assert all(m in pool for m in run.members)

    @given(stream, ks)
    @settings(max_examples=50)
    def test_coverage_at_least_best_single(self, embs, k):
        """Progressive init admits any positive-benefit first embedding, so
        the final coverage is at least the largest single embedding."""
        if not embs:
            return
        run = swap_stream(embs, k, SwapAlpha(alpha=1.0))
        # The first embedding is always admitted, and swaps with alpha >= 0
        # never decrease coverage, so the first embedding's size is a floor.
        assert run.coverage >= len(embs[0])


class TestDsqNsProperties:
    @given(stream, ks)
    @settings(max_examples=50)
    def test_capacity_and_distinct(self, embs, k):
        res = dsq_ns(embs, k, 5)
        assert len(res.members) <= k
        assert res.coverage == coverage(res.members)

    @given(st.lists(embedding, min_size=1, max_size=15), ks)
    @settings(max_examples=50)
    def test_no_zero_gain_members(self, embs, k):
        """Every selected member contributed at least one fresh vertex."""
        res = dsq_ns(embs, k, 5)
        seen: set[int] = set()
        for m in res.members:
            assert not (set(m) <= seen)
            seen |= set(m)
