"""CSR vs set backend: the full DSQL pipeline must be result-identical.

The ``set`` backend is the seed's reference representation; these tests pin
the refactoring contract that the CSR storage layer changes *nothing*
observable — same embeddings in the same order, same coverage, same
optimality flags — on every registered dataset stand-in and on random
hypothesis-generated instances.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.datasets.registry import dataset_names, make_dataset
from repro.exceptions import DatasetError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.queries.generator import query_set


def assert_results_identical(r1, r2):
    assert r1.embeddings == r2.embeddings
    assert r1.coverage == r2.coverage
    assert r1.optimal == r2.optimal
    assert r1.optimal_reason == r2.optimal_reason
    assert r1.level == r2.level


@pytest.mark.parametrize("dataset", dataset_names())
def test_backends_identical_on_registry_dataset(dataset):
    graph = make_dataset(dataset, scale=0.001, seed=7)
    assert graph.backend_name == "csr"
    twin = graph.with_backend("set")
    queries = query_set(graph, 3, 3, seed=11)
    config = DSQLConfig(k=4, node_budget=200_000)
    csr_session = DSQL(graph, config=config)
    set_session = DSQL(twin, config=config)
    for query in queries:
        assert_results_identical(csr_session.query(query), set_session.query(query))


@pytest.mark.parametrize("dataset", dataset_names()[:3])
def test_backends_identical_structure(dataset):
    graph = make_dataset(dataset, scale=0.001, seed=3)
    twin = graph.with_backend("set")
    assert list(graph.edges()) == list(twin.edges())
    assert graph.degree_sequence() == twin.degree_sequence()
    for v in range(min(graph.num_vertices, 40)):
        assert graph.neighbors(v) == twin.neighbors(v)
        assert graph.neighborhood_signature(v) == twin.neighborhood_signature(v)


@st.composite
def instances(draw):
    n = draw(st.integers(min_value=4, max_value=14))
    num_labels = draw(st.integers(min_value=2, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    labels = [f"L{rng.randrange(num_labels)}" for _ in range(n)]
    edges = [(u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < 0.35]
    graph = LabeledGraph(labels, edges, backend="csr")
    if graph.num_edges == 0:
        query = QueryGraph([labels[0]])
    else:
        from repro.queries.generator import random_query

        z = min(draw(st.integers(min_value=1, max_value=3)), graph.num_edges)
        query = None
        while z >= 1:
            try:
                query = random_query(graph, z, rng=rng)
                break
            except DatasetError:
                z -= 1
        if query is None:
            query = QueryGraph([labels[0]])
    k = draw(st.integers(min_value=1, max_value=5))
    return graph, query, k


@settings(max_examples=50, deadline=None)
@given(instances())
def test_backends_identical_on_random_instances(instance):
    graph, query, k = instance
    twin = graph.with_backend("set")
    for factory in (DSQLConfig.dsql0, lambda kk: DSQLConfig(k=kk)):
        config = factory(k)
        r_csr = DSQL(graph, config=config).query(query)
        r_set = DSQL(twin, config=config).query(query)
        assert_results_identical(r_csr, r_set)
