"""Property-based tests for the full DSQL solver on random small instances.

Each property drives the complete pipeline (candidates -> Phase 1 -> Phase 2)
on hypothesis-generated graphs and checks the result contract against naive
reference implementations.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.coverage.bounds import overall_ratio_bound
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.graph.validation import embeddings_distinct, validate_embedding

from tests.conftest import (
    brute_force_distinct_vertex_sets,
    brute_force_optimal_coverage,
)


@st.composite
def instances(draw):
    """A (graph, query, k) instance small enough for brute-force checks."""
    n = draw(st.integers(min_value=4, max_value=16))
    num_labels = draw(st.integers(min_value=2, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    labels = [f"L{rng.randrange(num_labels)}" for _ in range(n)]
    edges = [
        (u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < 0.3
    ]
    graph = LabeledGraph(labels, edges)

    # Query: a small connected subgraph of the data graph (guaranteed to
    # have at least one embedding — itself).
    if graph.num_edges == 0:
        query = QueryGraph([labels[0]])
    else:
        from repro.exceptions import DatasetError
        from repro.queries.generator import random_query

        z = min(draw(st.integers(min_value=1, max_value=3)), graph.num_edges)
        query = None
        while z >= 1:
            try:
                query = random_query(graph, z, rng=rng)
                break
            except DatasetError:
                z -= 1  # no connected z-edge subgraph; shrink
        if query is None:
            query = QueryGraph([labels[0]])
    k = draw(st.integers(min_value=1, max_value=5))
    return graph, query, k


@settings(max_examples=60, deadline=None)
@given(instances())
def test_result_contract(instance):
    graph, query, k = instance
    result = DSQL(graph, config=DSQLConfig(k=k)).query(query)
    assert len(result) <= k
    assert embeddings_distinct(result.embeddings)
    for emb in result.embeddings:
        validate_embedding(graph, query, emb)
    assert result.coverage == len(result.cover_set())
    assert result.coverage <= k * query.size


@settings(max_examples=40, deadline=None)
@given(instances())
def test_nonempty_whenever_embeddings_exist(instance):
    graph, query, k = instance
    result = DSQL(graph, config=DSQLConfig(k=k)).query(query)
    exists = bool(brute_force_distinct_vertex_sets(graph, query))
    assert bool(result.embeddings) == exists


@settings(max_examples=40, deadline=None)
@given(instances())
def test_theorem4_bound_against_brute_force(instance):
    """DSQL coverage >= the Theorem 4 fraction of the true optimum.

    Uses the strict configuration (no candidate cap, exhaustive levels)
    under which the paper's maximality argument holds unconditionally.
    """
    graph, query, k = instance
    vertex_sets = list(brute_force_distinct_vertex_sets(graph, query))
    if not vertex_sets or len(vertex_sets) > 40:
        return
    config = DSQLConfig(k=k, exhaustive_level=True, single_embedding_mode=False)
    result = DSQL(graph, config=config).query(query)
    opt = brute_force_optimal_coverage(vertex_sets, k)
    assert result.coverage >= overall_ratio_bound(k, query.size) * opt - 1e-9


@settings(max_examples=40, deadline=None)
@given(instances())
def test_optimality_claims_verified(instance):
    """Whenever DSQL (strict mode) claims optimality, brute force agrees."""
    graph, query, k = instance
    vertex_sets = list(brute_force_distinct_vertex_sets(graph, query))
    if len(vertex_sets) > 40:
        return
    config = DSQLConfig(k=k, exhaustive_level=True, single_embedding_mode=False)
    result = DSQL(graph, config=config).query(query)
    if result.optimal:
        opt = brute_force_optimal_coverage(vertex_sets, k)
        assert result.coverage == opt


@settings(max_examples=30, deadline=None)
@given(instances())
def test_variants_agree_on_validity(instance):
    graph, query, k = instance
    for factory in (DSQLConfig.dsql0, DSQLConfig.dsql2, DSQLConfig.dsql3):
        result = DSQL(graph, config=factory(k)).query(query)
        for emb in result.embeddings:
            validate_embedding(graph, query, emb)


@settings(max_examples=30, deadline=None)
@given(instances())
def test_pruning_variants_match_dsql0_coverage(instance):
    """§5.3/§5.4 are pruning-only: coverage identical to DSQL0."""
    graph, query, k = instance
    base = DSQL(graph, config=DSQLConfig.dsql0(k)).query(query)
    for factory in (DSQLConfig.dsql2, DSQLConfig.dsql3):
        other = DSQL(graph, config=factory(k)).query(query)
        assert other.coverage == base.coverage
