"""Property-based tests for qfList construction (Section 5.1)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.query_graph import QueryGraph
from repro.queries.qflist import NO_FATHER, resort, validate_qflist


@st.composite
def queries_and_overlaps(draw):
    """A random connected query, a random qlist order, a random overlap set."""
    n = draw(st.integers(min_value=1, max_value=8))
    rng = random.Random(draw(st.integers(min_value=0, max_value=9999)))
    labels = [rng.choice("abc") for _ in range(n)]
    # Random spanning tree + extra edges keeps the query connected.
    edges = set()
    for v in range(1, n):
        edges.add((rng.randrange(v), v))
    for _ in range(n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    query = QueryGraph(labels, sorted(edges))
    qlist = list(range(n))
    rng.shuffle(qlist)
    overlap_size = draw(st.integers(min_value=0, max_value=n - 1))
    qovp = set(rng.sample(range(n), overlap_size))
    return query, qlist, qovp


@settings(max_examples=120, deadline=None)
@given(queries_and_overlaps())
def test_resort_structural_invariants(case):
    query, qlist, qovp = case
    qf = resort(query, qlist, qovp)
    validate_qflist(query, qf)


@settings(max_examples=80, deadline=None)
@given(queries_and_overlaps())
def test_root_is_first_overlap_or_qlist_head(case):
    query, qlist, qovp = case
    qf = resort(query, qlist, qovp)
    expected_root = next((u for u in qlist if u in qovp), qlist[0])
    assert qf.entries[0].node == expected_root
    assert qf.entries[0].father == NO_FATHER


@settings(max_examples=80, deadline=None)
@given(queries_and_overlaps())
def test_rm_statistics_match_definitions(case):
    query, qlist, qovp = case
    qf = resort(query, qlist, qovp)
    q = query.size
    for u in range(q):
        expected_label = sum(
            1
            for w in range(q)
            if qf.rank[w] > qf.rank[u] and query.label(w) == query.label(u)
        )
        expected_neighbor = sum(
            1 for w in query.neighbors(u) if qf.rank[w] > qf.rank[u]
        )
        assert qf.label_rm[u] == expected_label
        assert qf.neighbor_rm[u] == expected_neighbor


@settings(max_examples=80, deadline=None)
@given(queries_and_overlaps())
def test_degree_one_nodes_trail(case):
    """Every degree-1 non-root node ranks after every higher-degree node."""
    query, qlist, qovp = case
    qf = resort(query, qlist, qovp)
    root = qf.entries[0].node
    leaf_ranks = [
        qf.rank[u]
        for u in range(query.size)
        if query.degree(u) == 1 and u != root
    ]
    trunk_ranks = [
        qf.rank[u]
        for u in range(query.size)
        if query.degree(u) != 1 or u == root
    ]
    if leaf_ranks and trunk_ranks:
        assert min(leaf_ranks) > max(trunk_ranks)
