"""Property gate: mutate-then-query ≡ rebuild-from-scratch-then-query.

The correctness keystone of live mutation (docs/mutation.md): for any
mutation script, querying the *mutated* graph — through warm caches,
delta-repaired indexes, version-qualified memos, and surviving plans —
must produce bit-identical :class:`DSQResult`\\ s to querying a graph
*rebuilt from scratch* with the post-mutation topology. Runs across the
registry datasets, both backends, plans on and off, and across an
explicit compaction (the epoch-bump path).
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.datasets.registry import dataset_names, make_dataset
from repro.graph.labeled_graph import LabeledGraph
from repro.queries.generator import query_set

SCALE = 0.002
OPS = 40


def assert_results_identical(r1, r2):
    assert r1.embeddings == r2.embeddings
    assert r1.coverage == r2.coverage
    assert r1.optimal == r2.optimal
    assert r1.optimal_reason == r2.optimal_reason
    assert r1.level == r2.level


def mutation_script(graph: LabeledGraph, rng: random.Random, count: int = OPS):
    """A mixed script of vertex adds, edge adds, and edge removes."""
    labels = sorted(set(graph.labels), key=str)
    edges = list(graph.edges())
    n = graph.num_vertices
    ops = []
    for _ in range(count):
        r = rng.random()
        if r < 0.15:
            ops.append(("add_vertex", rng.choice(labels)))
            n += 1
        elif r < 0.6:
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                ops.append(("add_edge", u, v))
        else:
            if edges and rng.random() < 0.7:
                u, v = edges[rng.randrange(len(edges))]
            else:
                u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                ops.append(("remove_edge", u, v))
    return ops


def rebuilt_twin(graph: LabeledGraph, backend: str) -> LabeledGraph:
    return LabeledGraph(list(graph.labels), list(graph.edges()), backend=backend)


@pytest.mark.parametrize("backend", ["csr", "set"])
@pytest.mark.parametrize("dataset", dataset_names())
def test_mutate_equals_rebuild(dataset, backend):
    graph = make_dataset(dataset, scale=SCALE, seed=7)
    if backend != graph.backend_name:
        graph = graph.with_backend(backend)
    queries = list(query_set(graph, 3, 3, seed=11))
    config = DSQLConfig(k=4, node_budget=200_000)
    session = DSQL(graph, config=config)
    # Warm everything pre-mutation: pools, plans, signatures, result memo.
    session.query_many(queries)

    ops = mutation_script(graph, random.Random(29))
    summary = graph.mutate(ops, compaction_threshold=None)
    assert summary.applied > 0
    assert summary.version == graph.version

    reference = DSQL(rebuilt_twin(graph, backend), config=config)
    for got, want in zip(session.query_many(queries), reference.query_many(queries)):
        assert_results_identical(got, want)

    # Cross the compaction boundary (fresh epoch, merged arrays) and the
    # answers must still be bit-identical.
    graph.compact()
    for got, want in zip(session.query_many(queries), reference.query_many(queries)):
        assert_results_identical(got, want)


@pytest.mark.parametrize("plans", [True, False], ids=["plans-on", "plans-off"])
def test_mutate_equals_rebuild_plans_toggle(plans):
    graph = make_dataset("yeast", scale=0.02, seed=3)
    queries = list(query_set(graph, 3, 4, seed=5))
    config = DSQLConfig(k=5, plan_cache=plans, node_budget=200_000)
    session = DSQL(graph, config=config)
    session.query_many(queries)

    for round_seed in (1, 2, 3):
        ops = mutation_script(graph, random.Random(round_seed), count=25)
        graph.mutate(ops, compaction_threshold=None)
        reference = DSQL(rebuilt_twin(graph, "csr"), config=config)
        for got, want in zip(session.query_many(queries), reference.query_many(queries)):
            assert_results_identical(got, want)


def test_incremental_single_ops_equal_rebuild():
    """Per-op mutation methods (not just batches) keep answers identical."""
    graph = make_dataset("yeast", scale=0.02, seed=9)
    queries = list(query_set(graph, 3, 3, seed=13))
    config = DSQLConfig(k=4)
    session = DSQL(graph, config=config)
    session.query_many(queries)
    rng = random.Random(41)
    for _ in range(15):
        n = graph.num_vertices
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        if graph.has_edge(u, v):
            graph.remove_edge(u, v)
        else:
            graph.add_edge(u, v)
    reference = DSQL(rebuilt_twin(graph, "csr"), config=config)
    for got, want in zip(session.query_many(queries), reference.query_many(queries)):
        assert_results_identical(got, want)


def test_memo_serves_stale_free_answers():
    """A memoized answer must never survive a topology change it depends on."""
    graph = make_dataset("yeast", scale=0.02, seed=17)
    queries = list(query_set(graph, 3, 2, seed=19))
    config = DSQLConfig(k=4)
    session = DSQL(graph, config=config)
    first = session.query_many(queries)
    # Same version: second pass is pure memo hits, bit-identical objects.
    again = session.query_many(queries)
    for a, b in zip(first, again):
        assert a.embeddings == b.embeddings
    graph.add_edge(0, graph.num_vertices - 1)
    post = session.query_many(queries)
    reference = DSQL(rebuilt_twin(graph, "csr"), config=config)
    for got, want in zip(post, reference.query_many(queries)):
        assert_results_identical(got, want)
