"""Run the doctest examples embedded in public docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.graph.builder
import repro.graph.labeled_graph
import repro.graph.query_graph

MODULES = [
    repro.graph.labeled_graph,
    repro.graph.builder,
    repro.graph.query_graph,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
