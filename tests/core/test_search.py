"""Tests for the level search engine's optimization strategies (Section 5).

The load-bearing property: the conflict-table (§5.3) and bad-vertex (§5.4)
strategies are *pruning-only* — they must not change which embeddings Phase 1
collects, only how much work finding them takes. The single-embedding cap
(§5.2) and the DSQLh relaxation are allowed to lose embeddings.
"""

from __future__ import annotations

import pytest

from repro.core.config import DSQLConfig
from repro.core.phase1 import run_phase1
from repro.core.state import SearchStats
from repro.graph.validation import validate_embedding
from repro.indexes.candidates import CandidateIndex

from tests.conftest import connected_query_from, random_labeled_graph


def collect(graph, query, config):
    stats = SearchStats()
    out = run_phase1(graph, query, config, CandidateIndex(graph, query), stats)
    return out.state, stats


def vertex_sets(state):
    return sorted(sorted(e) for e in state.embeddings)


@pytest.mark.parametrize("seed", range(12))
class TestPruningStrategiesPreserveResults:
    def test_conflict_tables_lossless(self, seed):
        graph = random_labeled_graph(35, 3, 0.18, seed=seed)
        query = connected_query_from(graph, 3, seed=seed + 31)
        base, _ = collect(graph, query, DSQLConfig.dsql0(6))
        conf, _ = collect(graph, query, DSQLConfig.dsql2(6))
        assert vertex_sets(base) == vertex_sets(conf)

    def test_bad_vertices_lossless(self, seed):
        graph = random_labeled_graph(35, 3, 0.18, seed=seed)
        query = connected_query_from(graph, 3, seed=seed + 31)
        base, _ = collect(graph, query, DSQLConfig.dsql0(6))
        bad, _ = collect(graph, query, DSQLConfig.dsql3(6))
        assert vertex_sets(base) == vertex_sets(bad)

    def test_all_variants_return_valid_embeddings(self, seed):
        graph = random_labeled_graph(30, 3, 0.2, seed=seed)
        query = connected_query_from(graph, 3, seed=seed + 5)
        for factory in (
            DSQLConfig.dsql0,
            DSQLConfig.dsql1,
            DSQLConfig.dsql2,
            DSQLConfig.dsql3,
            DSQLConfig.full,
            DSQLConfig.dsqlh,
        ):
            state, _ = collect(graph, query, factory(5))
            for emb in state.embeddings:
                validate_embedding(graph, query, emb)


class TestStrategyCounters:
    def test_conflict_skips_counted_somewhere(self):
        """Across a battery of graphs the conflict strategy must fire."""
        total = 0
        for seed in range(10):
            graph = random_labeled_graph(40, 2, 0.15, seed=seed)
            query = connected_query_from(graph, 4, seed=seed + 13)
            _, stats = collect(graph, query, DSQLConfig.dsql2(8))
            total += stats.conflict_skips
        assert total > 0

    def test_cap_hits_counted_somewhere(self):
        total = 0
        for seed in range(10):
            graph = random_labeled_graph(40, 2, 0.2, seed=seed)
            query = connected_query_from(graph, 4, seed=seed + 17)
            _, stats = collect(graph, query, DSQLConfig.dsql1(8))
            total += stats.candidate_cap_hits
        assert total > 0

    def test_nodes_expanded_monotone_under_pruning(self):
        """Pruning strategies must not *increase* expansions (same results)."""
        worse = 0
        for seed in range(10):
            graph = random_labeled_graph(40, 2, 0.15, seed=seed)
            query = connected_query_from(graph, 4, seed=seed + 3)
            _, s0 = collect(graph, query, DSQLConfig.dsql0(8))
            _, s2 = collect(graph, query, DSQLConfig.dsql2(8))
            if s2.nodes_expanded > s0.nodes_expanded:
                worse += 1
        assert worse == 0


class TestLocalizedSearchToggle:
    def test_non_localized_matches_localized_results(self):
        for seed in range(6):
            graph = random_labeled_graph(25, 3, 0.2, seed=seed)
            query = connected_query_from(graph, 3, seed=seed + 41)
            loc, _ = collect(graph, query, DSQLConfig.dsql0(5))
            non, _ = collect(
                graph, query, DSQLConfig.dsql0(5, localized_search=False)
            )
            # Same coverage is required; the exact embedding choice may vary
            # because candidate iteration order differs.
            assert loc.coverage == non.coverage, seed
