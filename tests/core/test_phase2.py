"""Unit tests for DSQL Phase 2 (Algorithm 5)."""

from __future__ import annotations

import pytest

from repro.core.config import DSQLConfig
from repro.core.phase1 import run_phase1
from repro.core.phase2 import run_phase2
from repro.core.state import SearchStats
from repro.graph.validation import embeddings_distinct, validate_embedding
from repro.indexes.candidates import CandidateIndex

from tests.conftest import connected_query_from, random_labeled_graph


def run_both(graph, query, config):
    stats = SearchStats()
    candidates = CandidateIndex(graph, query)
    p1 = run_phase1(graph, query, config, candidates, stats)
    p2 = None
    if len(p1.state) == config.k:
        p2 = run_phase2(graph, query, config, candidates, p1, stats)
    return p1, p2, stats


def cases():
    for seed in range(10):
        graph = random_labeled_graph(35, 2, 0.15, seed=seed)
        query = connected_query_from(graph, 3, seed=seed + 61)
        yield graph, query


class TestPhase2Soundness:
    def test_coverage_never_decreases(self):
        ran = 0
        for graph, query in cases():
            config = DSQLConfig(k=5)
            p1, p2, _ = run_both(graph, query, config)
            if p2 is None:
                continue
            ran += 1
            assert p2.coverage >= p1.state.coverage
        assert ran > 0, "no case exercised Phase 2; enlarge the battery"

    def test_result_size_stays_k(self):
        for graph, query in cases():
            config = DSQLConfig(k=5)
            p1, p2, _ = run_both(graph, query, config)
            if p2 is not None:
                assert len(p2.embeddings) == config.k

    def test_embeddings_valid_and_distinct(self):
        for graph, query in cases():
            config = DSQLConfig(k=5)
            _, p2, _ = run_both(graph, query, config)
            if p2 is None:
                continue
            for emb in p2.embeddings:
                validate_embedding(graph, query, emb)
            assert embeddings_distinct(p2.embeddings)

    def test_stats_flags(self):
        for graph, query in cases():
            config = DSQLConfig(k=5)
            _, p2, stats = run_both(graph, query, config)
            if p2 is not None:
                assert stats.phase2_ran
                assert stats.phase2_swaps == p2.swaps


class TestSwapCriterion:
    def test_alpha_zero_swaps_at_least_as_often(self):
        """Smaller alpha = weaker criterion = at least as many swaps."""
        strict_total = loose_total = 0
        for graph, query in cases():
            _, p2a, _ = run_both(graph, query, DSQLConfig(k=5, alpha=3.0))
            _, p2b, _ = run_both(graph, query, DSQLConfig(k=5, alpha=0.0))
            if p2a is not None and p2b is not None:
                strict_total += p2a.swaps
                loose_total += p2b.swaps
        assert loose_total >= strict_total


class TestEarlyTermination:
    def test_early_termination_fires_somewhere(self):
        fired = 0
        for graph, query in cases():
            _, p2, stats = run_both(graph, query, DSQLConfig(k=4))
            if p2 is not None and p2.early_terminated:
                fired += 1
        # The condition is opportunistic; it should fire at least once in a
        # battery where Phase 1 hands over overlapping collections.
        assert fired >= 1

    def test_termination_condition_honored(self):
        """When early termination fires, the Lemma 4 predicate must hold."""
        from repro.coverage.core import CoverageTracker

        for graph, query in cases():
            config = DSQLConfig(k=4)
            stats = SearchStats()
            candidates = CandidateIndex(graph, query)
            p1 = run_phase1(graph, query, config, candidates, stats)
            if len(p1.state) != config.k:
                continue
            t1_cover = frozenset(p1.state.covered)
            p2 = run_phase2(graph, query, config, candidates, p1, stats)
            if not p2.early_terminated:
                continue
            tracker = CoverageTracker(p2.embeddings)
            assert t1_cover <= tracker.cover_set()
            q = query.size
            level = p1.level + p2.levels_run - 1
            threshold = (q - level) / (1 + config.alpha)
            for slot in tracker.slots():
                assert tracker.loss(slot) >= threshold
