"""Wall-clock deadline (``time_budget_ms``) tests.

The deadline is stride-checked (every ``DEADLINE_CHECK_STRIDE`` expansions),
so tests pin the stride to 1 to make tiny budgets trip deterministically.
Like ``node_budget``, an exhausted deadline must still yield a *valid*
truncated result — every returned embedding checks out — it only forfeits
the optimality claims.
"""

from __future__ import annotations

import pytest

import repro.core.search as search_mod
from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL, diversified_search
from repro.exceptions import BudgetExceeded, ConfigError, DeadlineExceeded
from repro.isomorphism.optimized import OptimizedQSearchEngine


@pytest.fixture()
def stride_one(monkeypatch):
    monkeypatch.setattr(search_mod, "DEADLINE_CHECK_STRIDE", 1)


class TestConfig:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigError):
            DSQLConfig(k=2, time_budget_ms=0)
        with pytest.raises(ConfigError):
            DSQLConfig(k=2, time_budget_ms=-5.0)

    def test_exception_hierarchy(self):
        # Every truncation path that catches BudgetExceeded must also
        # catch a tripped deadline.
        assert issubclass(DeadlineExceeded, BudgetExceeded)


class TestQueryDeadline:
    def test_tiny_budget_truncates_validly(self, stride_one, imdb_small):
        graph, query = imdb_small
        config = DSQLConfig(k=5, time_budget_ms=1e-6, validate_results=True)
        result = DSQL(graph, config=config).query(query)
        assert result.stats.deadline_exhausted
        assert not result.stats.budget_exhausted
        assert not result.optimal
        # validate_results=True already checked each embedding in query().
        assert len(result) <= 5

    def test_generous_budget_matches_unbudgeted(self, fig1):
        graph, query = fig1
        plain = diversified_search(graph, query, k=2)
        budgeted = diversified_search(graph, query, k=2, time_budget_ms=60_000.0)
        assert not budgeted.stats.deadline_exhausted
        assert budgeted.to_dict() == plain.to_dict()

    def test_deadline_distinct_from_node_budget(self, stride_one, imdb_small):
        graph, query = imdb_small
        result = diversified_search(graph, query, k=5, node_budget=1)
        assert result.stats.budget_exhausted
        assert not result.stats.deadline_exhausted


class TestOptimizedEngineDeadline:
    def test_tiny_budget_stops_enumeration(self, monkeypatch, imdb_small):
        graph, query = imdb_small
        engine = OptimizedQSearchEngine(graph, query, time_budget_ms=1e-6)
        engine._deadline_stride = 1
        embeddings = list(engine.embeddings())
        assert engine.deadline_exhausted
        assert not engine.budget_exhausted
        # Whatever was found before the cut-off is still correct.
        for emb in embeddings:
            for a, b in query.edges():
                assert graph.has_edge(emb[a], emb[b])

    def test_no_budget_flag_stays_clear(self, fig1):
        graph, query = fig1
        engine = OptimizedQSearchEngine(graph, query, time_budget_ms=60_000.0)
        list(engine.embeddings())
        assert not engine.deadline_exhausted
