"""White-box tests for :class:`LevelSearchEngine` internals."""

from __future__ import annotations

import pytest

from repro.core.config import DSQLConfig
from repro.core.search import LevelSearchEngine
from repro.core.state import SearchStats
from repro.exceptions import BudgetExceeded
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.candidates import CandidateIndex
from repro.isomorphism.joinable import UNMATCHED
from repro.queries.ordering import selectivity_order


def engine_for(graph, query, config=None, matched=None):
    config = config or DSQLConfig(k=5)
    return LevelSearchEngine(
        graph,
        query,
        CandidateIndex(graph, query),
        config,
        SearchStats(),
        matched if matched is not None else set(),
    )


@pytest.fixture()
def setting():
    #      v0(a) - v1(b) - v2(c)
    #        \----- v3(b) - v4(c)
    graph = LabeledGraph(
        ["a", "b", "c", "b", "c"], [(0, 1), (1, 2), (0, 3), (3, 4)]
    )
    query = QueryGraph(["a", "b", "c"], [(0, 1), (1, 2)])
    return graph, query


class TestConflictSet:
    def test_static_part_is_query_neighbors(self, setting):
        graph, query = setting
        engine = engine_for(graph, query)
        conflicts = engine._conflict_set(1)
        assert {0, 2} <= conflicts

    def test_dynamic_part_catches_held_candidates(self, setting):
        graph, query = setting
        engine = engine_for(graph, query)
        # Node 2 wants a "c" vertex; assign node 0 a vertex that could never
        # be node 2's candidate (label a) -> no dynamic conflict beyond
        # static. Now hold v2 (a valid c-candidate) under node 0's slot by
        # faking the assignment state:
        engine._assignment[0] = 2  # vertex v2 has label c
        conflicts = engine._conflict_set(2)
        assert 0 in conflicts  # v2 passes node 2's filters -> dynamic conflict
        engine._assignment[0] = UNMATCHED

    def test_failure_set_excludes_self(self, setting):
        graph, query = setting
        engine = engine_for(graph, query)
        conflicts = engine._conflict_set(1)
        assert 1 not in conflicts


class TestRcand:
    def test_localized_uses_father_neighborhood(self, setting):
        graph, query = setting
        engine = engine_for(graph, query)
        qlist = selectivity_order(query, engine.candidates)
        engine._qf = __import__(
            "repro.queries.qflist", fromlist=["resort"]
        ).resort(query, qlist)
        # Assign the father of some non-root node and check Rcand shrinks.
        root = engine._qf.entries[0].node
        child_entry = engine._qf.entries[1]
        engine._assignment[root] = engine.candidates.candidates(root)[0]
        rcand = engine._rcand(child_entry.node, child_entry.father, is_overlap=False)
        vf = engine._assignment[root]
        assert set(rcand) <= set(graph.neighbors(vf))
        engine._assignment[root] = UNMATCHED

    def test_non_localized_returns_full_bucket(self, setting):
        graph, query = setting
        engine = engine_for(
            graph, query, DSQLConfig(k=5, localized_search=False)
        )
        qlist = selectivity_order(query, engine.candidates)
        from repro.queries.qflist import resort

        engine._qf = resort(query, qlist)
        entry = engine._qf.entries[1]
        rcand = engine._rcand(entry.node, entry.father, is_overlap=False)
        assert set(rcand) == set(engine.candidates.candidates(entry.node))

    def test_overlap_restricts_to_tcand(self, setting):
        graph, query = setting
        engine = engine_for(graph, query, DSQLConfig(k=5, localized_search=False))
        from repro.queries.qflist import resort

        qlist = selectivity_order(query, engine.candidates)
        engine._qf = resort(query, qlist, qovp={1})
        engine._tcand = {u: {1} for u in range(query.size)}
        rcand = engine._rcand(1, -1, is_overlap=True)
        assert set(rcand) <= {1}


class TestBudget:
    def test_charge_raises_past_budget(self, setting):
        graph, query = setting
        engine = engine_for(graph, query, DSQLConfig(k=5, node_budget=2))
        engine._charge()
        engine._charge()
        with pytest.raises(BudgetExceeded):
            engine._charge()
        assert engine.stats.budget_exhausted


class TestRunLevelContract:
    def test_level0_yields_disjoint_embeddings(self, setting):
        graph, query = setting
        matched = set()
        engine = engine_for(graph, query, matched=matched)
        qlist = selectivity_order(query, engine.candidates)
        collected = []
        engine.run_level(0, qlist, {u: set() for u in range(3)}, lambda m: (collected.append(m), True)[1])
        flat = [v for m in collected for v in m]
        assert len(flat) == len(set(flat))
        assert matched == set(flat)

    def test_callback_stop_honored(self, setting):
        graph, query = setting
        engine = engine_for(graph, query)
        qlist = selectivity_order(query, engine.candidates)
        collected = []

        def stop_after_one(mapping):
            collected.append(mapping)
            return False

        keep = engine.run_level(0, qlist, {u: set() for u in range(3)}, stop_after_one)
        assert not keep
        assert len(collected) == 1
