"""End-to-end tests for the public DSQL API."""

from __future__ import annotations

import pytest

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL, diversified_search
from repro.coverage.bounds import overall_ratio_bound, phase1_ratio_bound
from repro.coverage.exact import optimal_coverage
from repro.exceptions import ConfigError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.graph.validation import embeddings_distinct, validate_embedding
from repro.isomorphism.qsearch import enumerate_embeddings

from tests.conftest import connected_query_from, random_labeled_graph


class TestApiSurface:
    def test_requires_config_or_k(self):
        g = LabeledGraph(["a"])
        with pytest.raises(ValueError, match="either"):
            DSQL(g)

    def test_conflicting_k(self):
        g = LabeledGraph(["a"])
        with pytest.raises(ValueError, match="conflicting"):
            DSQL(g, config=DSQLConfig(k=3), k=4)

    def test_matching_k_ok(self):
        g = LabeledGraph(["a"])
        DSQL(g, config=DSQLConfig(k=3), k=3)

    def test_diversified_search_overrides(self, fig1):
        graph, query = fig1
        r = diversified_search(graph, query, k=2, run_phase2=False)
        assert r.k == 2

    def test_config_and_overrides_conflict(self, fig1):
        graph, query = fig1
        with pytest.raises(ValueError, match="not both"):
            diversified_search(graph, query, k=2, config=DSQLConfig(k=2), seed=1)

    def test_solver_reusable_across_queries(self, fig1, fig2):
        graph, query = fig1
        solver = DSQL(graph, k=2)
        r1 = solver.query(query)
        r2 = solver.query(query)
        assert r1.coverage == r2.coverage


class TestResultContract:
    @pytest.mark.parametrize("seed", range(8))
    def test_embeddings_valid_distinct_capped(self, seed):
        graph = random_labeled_graph(30, 3, 0.2, seed=seed)
        query = connected_query_from(graph, 3, seed=seed + 19)
        k = 5
        r = diversified_search(graph, query, k=k)
        assert len(r) <= k
        assert embeddings_distinct(r.embeddings)
        for emb in r.embeddings:
            validate_embedding(graph, query, emb)
        assert r.coverage == len(r.cover_set())
        assert 0.0 <= r.approx_ratio_lower_bound() <= 1.0

    def test_validate_results_flag(self, fig1):
        graph, query = fig1
        r = diversified_search(graph, query, k=2, validate_results=True)
        assert len(r) == 2

    def test_summary_mentions_key_facts(self, fig1):
        graph, query = fig1
        text = diversified_search(graph, query, k=2).summary()
        assert "coverage" in text and "2/2" in text

    def test_vertex_sets_view(self, fig1):
        graph, query = fig1
        r = diversified_search(graph, query, k=2)
        assert all(isinstance(s, frozenset) for s in r.vertex_sets())

    def test_max_value_rules(self, fig1):
        graph, query = fig1
        r = diversified_search(graph, query, k=2)
        assert r.optimal
        assert r.max_value() == r.coverage
        r2 = diversified_search(graph, query, k=3)
        if not r2.optimal:
            assert r2.max_value() == 3 * query.size


class TestOptimalityClaims:
    def test_disjoint_claim_is_true(self, fig1):
        graph, query = fig1
        r = diversified_search(graph, query, k=2)
        assert r.optimal and r.optimal_reason == "disjoint"
        assert r.is_disjoint()

    def test_exhausted_claim_verified_against_exact(self):
        """optimal(exhausted) results must match the true optimum.

        Verified with the strict maximality mode and the cap disabled, where
        the Theorem 3 argument holds unconditionally.
        """
        checked = 0
        for seed in range(20):
            graph = random_labeled_graph(22, 3, 0.25, seed=seed)
            query = connected_query_from(graph, 3, seed=seed + 23)
            config = DSQLConfig(
                k=8, exhaustive_level=True, single_embedding_mode=False
            )
            r = DSQL(graph, config=config).query(query)
            if not (r.optimal and r.optimal_reason == "exhausted"):
                continue
            embeddings = enumerate_embeddings(graph, query, distinct_vertex_sets=True)
            if len(embeddings) > 150:
                continue
            try:
                opt, _ = optimal_coverage(embeddings, 8, max_nodes=200_000)
            except ConfigError:
                continue  # instance too hard for an exact answer; skip it
            assert r.coverage == opt, seed
            checked += 1
        assert checked >= 2

    def test_theorem3_bound_holds_vs_exact(self):
        """Phase-1 level bound: coverage >= bound * optimum (strict mode)."""
        for seed in range(8):
            graph = random_labeled_graph(25, 2, 0.2, seed=seed)
            query = connected_query_from(graph, 2, seed=seed + 29)
            k = 4
            config = DSQLConfig(
                k=k,
                exhaustive_level=True,
                single_embedding_mode=False,
                run_phase2=False,
            )
            r = DSQL(graph, config=config).query(query)
            embeddings = enumerate_embeddings(graph, query, distinct_vertex_sets=True)
            if not embeddings or len(embeddings) > 150:
                continue
            try:
                opt, _ = optimal_coverage(embeddings, k, max_nodes=200_000)
            except ConfigError:
                continue
            bound = phase1_ratio_bound(query.size, r.level, k)
            assert r.coverage >= bound * opt - 1e-9, seed

    def test_overall_bound_holds_vs_exact(self):
        """Theorem 4: full DSQL >= 0.25 * (1 + max(1/k, 1/q)) of optimum."""
        for seed in range(8):
            graph = random_labeled_graph(28, 2, 0.2, seed=seed)
            query = connected_query_from(graph, 3, seed=seed + 37)
            k = 4
            config = DSQLConfig(k=k, exhaustive_level=True, single_embedding_mode=False)
            r = DSQL(graph, config=config).query(query)
            embeddings = enumerate_embeddings(graph, query, distinct_vertex_sets=True)
            if not embeddings or len(embeddings) > 150:
                continue
            try:
                opt, _ = optimal_coverage(embeddings, k, max_nodes=200_000)
            except ConfigError:
                continue
            assert r.coverage >= overall_ratio_bound(k, query.size) * opt - 1e-9


class TestPhaseDispatch:
    def test_phase2_skipped_when_optimal(self, fig1):
        graph, query = fig1
        r = diversified_search(graph, query, k=2)
        assert r.optimal
        assert not r.stats.phase2_ran

    def test_phase2_skipped_when_ratio_target_met(self):
        for seed in range(6):
            graph = random_labeled_graph(40, 2, 0.2, seed=seed)
            query = connected_query_from(graph, 2, seed=seed)
            r = diversified_search(graph, query, k=4)
            ratio = r.coverage / (4 * query.size)
            if not r.optimal and ratio >= 0.5:
                assert not r.stats.phase2_ran or r.stats.phase2_ran is False

    def test_run_phase2_false_never_runs(self):
        for seed in range(6):
            graph = random_labeled_graph(40, 2, 0.2, seed=seed)
            query = connected_query_from(graph, 2, seed=seed)
            r = diversified_search(graph, query, k=4, run_phase2=False)
            assert not r.stats.phase2_ran

    def test_dsqlh_never_claims_exhausted_optimal(self):
        for seed in range(6):
            graph = random_labeled_graph(30, 3, 0.2, seed=seed)
            query = connected_query_from(graph, 3, seed=seed)
            r = DSQL(graph, config=DSQLConfig.dsqlh(6)).query(query)
            assert r.optimal_reason != "exhausted"
