"""Unit tests for :mod:`repro.core.state`."""

from __future__ import annotations

from repro.core.state import SearchStats, SolutionState


class TestSearchStats:
    def test_record_added(self):
        s = SearchStats()
        s.record_added(0)
        s.record_added(0)
        s.record_added(2)
        assert s.embeddings_found == 3
        assert s.per_level_added == {0: 2, 2: 1}

    def test_defaults(self):
        s = SearchStats()
        assert s.nodes_expanded == 0
        assert not s.phase2_ran
        assert not s.budget_exhausted


class TestSolutionState:
    def test_add_updates_all_views(self):
        st = SolutionState()
        st.add((1, 2, 3))
        assert len(st) == 1
        assert st.covered == {1, 2, 3}
        assert st.matched == {1, 2, 3}
        assert st.coverage == 3

    def test_overlapping_adds(self):
        st = SolutionState()
        st.add((1, 2))
        st.add((2, 3))
        assert st.coverage == 3
        assert not st.is_disjoint()

    def test_disjoint(self):
        st = SolutionState()
        st.add((1, 2))
        st.add((3, 4))
        assert st.is_disjoint()

    def test_empty_is_disjoint(self):
        assert SolutionState().is_disjoint()

    def test_matched_can_outgrow_covered(self):
        """Phase 2 marks generated-but-rejected embeddings in matched only."""
        st = SolutionState()
        st.add((1, 2))
        st.matched.update((8, 9))
        assert st.covered == {1, 2}
        assert st.matched == {1, 2, 8, 9}
