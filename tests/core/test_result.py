"""Unit tests for :mod:`repro.core.result` and the batch API."""

from __future__ import annotations

import json

import pytest

from repro.core.dsql import DSQL
from repro.core.result import DSQResult
from repro.core.state import SearchStats


def make_result(**overrides) -> DSQResult:
    base = dict(
        embeddings=[(0, 1), (2, 3)],
        k=3,
        q=2,
        coverage=4,
        level=0,
        optimal=False,
        optimal_reason="",
        stats=SearchStats(),
    )
    base.update(overrides)
    return DSQResult(**base)


class TestDSQResult:
    def test_len(self):
        assert len(make_result()) == 2

    def test_cover_set(self):
        assert make_result().cover_set() == {0, 1, 2, 3}

    def test_vertex_sets(self):
        assert make_result().vertex_sets() == [frozenset({0, 1}), frozenset({2, 3})]

    def test_max_value_optimal(self):
        r = make_result(optimal=True, optimal_reason="disjoint")
        assert r.max_value() == 4

    def test_max_value_not_optimal(self):
        assert make_result().max_value() == 6

    def test_ratio_bounds(self):
        assert make_result().approx_ratio_lower_bound() == pytest.approx(4 / 6)
        assert make_result(optimal=True).approx_ratio_lower_bound() == 1.0

    def test_ratio_empty(self):
        r = make_result(embeddings=[], coverage=0, k=1, q=1)
        assert 0.0 <= r.approx_ratio_lower_bound() <= 1.0

    def test_is_disjoint(self):
        assert make_result().is_disjoint()
        assert not make_result(embeddings=[(0, 1), (1, 2)], coverage=3).is_disjoint()

    def test_summary_format(self):
        text = make_result(optimal=True, optimal_reason="disjoint").summary()
        assert "2/3" in text and "optimal(disjoint)" in text

    def test_to_dict_json_roundtrip(self):
        payload = make_result().to_dict()
        text = json.dumps(payload)
        back = json.loads(text)
        assert back["coverage"] == 4
        assert back["embeddings"] == [[0, 1], [2, 3]]
        assert "nodes_expanded" in back["stats"]


class TestQueryMany:
    def test_memoizes_duplicates(self, fig1):
        graph, query = fig1
        solver = DSQL(graph, k=2)
        results = solver.query_many([query, query, query])
        assert len(results) == 3
        assert results[0].embeddings == results[1].embeddings == results[2].embeddings
        assert solver.stats.query_cache_misses == 1
        assert solver.stats.query_cache_hits == 2
        assert [r.from_cache for r in results] == [False, True, True]

    def test_distinct_queries_distinct_results(self, fig1, fig2):
        graph, query = fig1
        from repro.graph.query_graph import QueryGraph

        other = QueryGraph(["a", "b"], [(0, 1)])
        solver = DSQL(graph, k=2)
        r1, r2 = solver.query_many([query, other])
        assert r1 is not r2
