"""Tests for the DSQL session query-result memo (``DSQL.query_many``)."""

from __future__ import annotations

import pytest

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.exceptions import ConfigError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph


@pytest.fixture()
def graph():
    labels = ["a", "b", "a", "b", "c", "a"]
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 3)]
    return LabeledGraph(labels, edges)


def _query(a="a", b="b"):
    return QueryGraph([a, b], [(0, 1)])


def test_repeated_query_hits_cache(graph):
    session = DSQL(graph, k=3)
    q = _query()
    results = session.query_many([q, q, q])
    assert session.stats.query_cache_misses == 1
    assert session.stats.query_cache_hits == 2
    # Hits are equal to the miss but are flagged copies, not the same object.
    assert results[1] is not results[0] and results[2] is not results[0]
    assert results[0].embeddings == results[1].embeddings == results[2].embeddings
    assert not results[0].from_cache
    assert results[1].from_cache and results[2].from_cache


def test_equal_structure_shares_entry(graph):
    session = DSQL(graph, k=3)
    # Distinct objects, same labels and (normalized) edge set -> same key.
    q1 = QueryGraph(["a", "b"], [(0, 1)])
    q2 = QueryGraph(["a", "b"], [(1, 0)])
    r1, r2 = session.query_many([q1, q2])
    assert session.stats.query_cache_hits == 1
    assert r1.embeddings == r2.embeddings
    assert not r1.from_cache and r2.from_cache


def test_cache_persists_across_calls(graph):
    session = DSQL(graph, k=3)
    q = _query()
    session.query_many([q])
    session.query_many([q])
    assert session.stats.query_cache_hits == 1
    assert session.stats.query_cache_misses == 1


def test_lru_eviction_with_tiny_cap(graph):
    config = DSQLConfig(k=3, query_cache_size=1)
    session = DSQL(graph, config=config)
    qa, qb = _query("a", "b"), _query("b", "c")
    session.query_many([qa, qb, qa])  # qb evicts qa; third call misses
    assert session.stats.query_cache_misses == 3
    assert session.stats.query_cache_hits == 0
    session.query_many([qa])  # now resident
    assert session.stats.query_cache_hits == 1


def test_cap_zero_disables_cache(graph):
    session = DSQL(graph, config=DSQLConfig(k=3, query_cache_size=0))
    q = _query()
    r1, r2 = session.query_many([q, q])
    assert session.stats.query_cache_misses == 2
    assert session.stats.query_cache_hits == 0
    assert r1 is not r2
    assert r1.embeddings == r2.embeddings
    assert not r1.from_cache and not r2.from_cache


def test_unbounded_cache(graph):
    session = DSQL(graph, config=DSQLConfig(k=3, query_cache_size=None))
    queries = [_query("a", "b"), _query("b", "c"), _query("a", "c")]
    session.query_many(queries + queries)
    assert session.stats.query_cache_misses == 3
    assert session.stats.query_cache_hits == 3


def test_cached_results_match_fresh_query(graph):
    session = DSQL(graph, k=3)
    q = _query()
    (cached,) = session.query_many([q])
    fresh = DSQL(graph, k=3).query(q)
    assert cached.embeddings == fresh.embeddings
    assert cached.coverage == fresh.coverage
    assert cached.optimal == fresh.optimal


def test_config_rejects_negative_cache_size():
    with pytest.raises(ConfigError):
        DSQLConfig(k=3, query_cache_size=-1)


# ----------------------------------------------------------------------
# Memo aliasing regression (the PR-2 headline bugfix): before results were
# frozen, a cache hit returned the same mutable DSQResult on every call, so
# one caller mutating result.embeddings corrupted the cache for everyone.
# ----------------------------------------------------------------------
def test_returned_result_is_immutable(graph):
    session = DSQL(graph, k=3)
    (result,) = session.query_many([_query()])
    with pytest.raises(Exception):
        result.embeddings = ()
    with pytest.raises(AttributeError):
        result.embeddings.clear()  # tuples have no mutators
    with pytest.raises(AttributeError):
        result.embeddings.append((0, 1))


def test_mutating_caller_cannot_corrupt_cache(graph):
    session = DSQL(graph, k=3)
    q = _query()
    (first,) = session.query_many([q])
    pristine_embeddings = tuple(first.embeddings)
    pristine_nodes = first.stats.nodes_expanded

    # A hostile/buggy caller tries every mutation the old API allowed.
    for attack in (
        lambda r: r.embeddings.clear(),
        lambda r: r.embeddings.append((99, 99)),
        lambda r: setattr(r, "coverage", -1),
    ):
        with pytest.raises(Exception):
            attack(first)
    # stats is intentionally a mutable counter bundle; mutate it freely.
    first.stats.nodes_expanded = -123

    (second,) = session.query_many([q])
    assert second.from_cache
    assert second.embeddings == pristine_embeddings
    assert second.coverage == first.coverage
    # The hit's stats are a copy of the *cached* pristine counters, not the
    # aliased object the first caller scribbled on.
    assert second.stats.nodes_expanded == pristine_nodes


def test_cache_hit_stats_are_independent_copies(graph):
    session = DSQL(graph, k=3)
    q = _query()
    session.query_many([q])
    (hit1,) = session.query_many([q])
    hit1.stats.nodes_expanded = 10**9
    (hit2,) = session.query_many([q])
    assert hit2.stats.nodes_expanded != 10**9


def test_session_pins_index_cache(graph):
    session = DSQL(graph, k=3)
    assert session.index_cache is graph.index_cache()
    other = DSQL(graph, k=5)
    assert other.index_cache is session.index_cache
