"""Unit tests for DSQL Phase 1 (Algorithm 3) invariants."""

from __future__ import annotations

import pytest

from repro.core.config import DSQLConfig
from repro.core.phase1 import run_phase1, tcand_snapshot
from repro.core.state import SearchStats
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.graph.validation import (
    embeddings_distinct,
    embeddings_pairwise_disjoint,
    validate_embedding,
)
from repro.indexes.candidates import CandidateIndex

from tests.conftest import (
    brute_force_distinct_vertex_sets,
    connected_query_from,
    random_labeled_graph,
)


def phase1(graph, query, config):
    stats = SearchStats()
    out = run_phase1(graph, query, config, CandidateIndex(graph, query), stats)
    return out, stats


class TestBasicBehaviour:
    def test_no_candidates_returns_empty_exhausted(self):
        graph = LabeledGraph(["a", "a"], [(0, 1)])
        query = QueryGraph(["a", "z"], [(0, 1)])
        out, stats = phase1(graph, query, DSQLConfig(k=3))
        assert out.exhausted
        assert len(out.state) == 0

    def test_k_cap_respected(self, fig2):
        graph, query = fig2
        out, _ = phase1(graph, query, DSQLConfig(k=2))
        assert len(out.state) == 2
        assert not out.exhausted

    def test_all_embeddings_valid(self, fig2):
        graph, query = fig2
        out, _ = phase1(graph, query, DSQLConfig(k=10))
        for emb in out.state.embeddings:
            validate_embedding(graph, query, emb)

    def test_vertex_sets_distinct(self, fig2):
        graph, query = fig2
        out, _ = phase1(graph, query, DSQLConfig(k=10))
        assert embeddings_distinct(out.state.embeddings)

    def test_level0_result_disjoint(self, fig2):
        graph, query = fig2
        out, _ = phase1(graph, query, DSQLConfig(k=2))
        assert out.level == 0
        assert embeddings_pairwise_disjoint(out.state.embeddings)


class TestLevelAccounting:
    def test_coverage_matches_per_level_contributions(self):
        """An embedding accepted at level i contributes exactly q - i vertices."""
        for seed in range(6):
            graph = random_labeled_graph(40, 3, 0.15, seed=seed)
            query = connected_query_from(graph, 3, seed=seed)
            out, stats = phase1(graph, query, DSQLConfig(k=8))
            q = query.size
            expected = sum(
                (q - level) * count for level, count in stats.per_level_added.items()
            )
            assert out.state.coverage == expected, seed

    def test_levels_do_not_exceed_q(self, fig2):
        graph, query = fig2
        out, stats = phase1(graph, query, DSQLConfig(k=100))
        assert out.level <= query.size - 1
        assert stats.phase1_levels <= query.size

    def test_figure2_trace(self, fig2):
        """Example 2: k=6 stops at level 2 with the paper's six embeddings."""
        graph, query = fig2
        out, _ = phase1(graph, query, DSQLConfig(k=6, single_embedding_mode=False))
        assert len(out.state) == 6
        assert out.level == 2
        got = {frozenset(e) for e in out.state.embeddings}
        paper = {
            frozenset(v - 1 for v in s)
            for s in [{1, 2, 3}, {7, 8, 9}, {1, 5, 6}, {14, 2, 15}, {16, 17, 3}, {1, 8, 13}]
        }
        assert got == paper


class TestExhaustion:
    def test_exhausted_flag_when_under_k(self, fig2):
        graph, query = fig2
        out, _ = phase1(graph, query, DSQLConfig(k=100))
        assert out.exhausted
        assert len(out.state) < 100

    def test_exhaustive_level_collects_at_least_as_much(self):
        for seed in range(5):
            graph = random_labeled_graph(30, 2, 0.2, seed=seed)
            query = connected_query_from(graph, 2, seed=seed + 50)
            base, _ = phase1(graph, query, DSQLConfig(k=50))
            strict, _ = phase1(graph, query, DSQLConfig(k=50, exhaustive_level=True))
            assert strict.state.coverage >= base.state.coverage, seed

    def test_exhaustive_under_k_covers_every_embedding(self):
        """Strict maximality: every embedding lies inside the final cover."""
        for seed in range(6):
            graph = random_labeled_graph(25, 3, 0.2, seed=seed)
            query = connected_query_from(graph, 3, seed=seed + 7)
            config = DSQLConfig(
                k=1000, exhaustive_level=True, single_embedding_mode=False
            )
            out, _ = phase1(graph, query, config)
            assert out.exhausted
            cover = out.state.covered
            for vs in brute_force_distinct_vertex_sets(graph, query):
                assert vs <= cover, (seed, vs)


class TestBudget:
    def test_budget_truncates_cleanly(self):
        graph = random_labeled_graph(50, 2, 0.3, seed=1)
        query = connected_query_from(graph, 3, seed=1)
        config = DSQLConfig(k=1000, node_budget=50)
        out, stats = phase1(graph, query, config)
        assert stats.budget_exhausted
        for emb in out.state.embeddings:
            validate_embedding(graph, query, emb)


class TestTcandSnapshot:
    def test_snapshot_is_intersection(self):
        graph = LabeledGraph(["a", "a", "b"], [(0, 2), (1, 2)])
        query = QueryGraph(["a", "b"], [(0, 1)])
        idx = CandidateIndex(graph, query)
        snap = tcand_snapshot(idx, {0, 2}, query.size)
        assert snap[0] == {0}
        assert snap[1] == {2}
