"""Unit tests for :mod:`repro.core.config`."""

from __future__ import annotations

import pytest

from repro.core.config import VARIANTS, DSQLConfig, variant_config
from repro.exceptions import ConfigError


class TestValidation:
    def test_k_positive(self):
        with pytest.raises(ConfigError):
            DSQLConfig(k=0)

    def test_alpha_nonnegative(self):
        with pytest.raises(ConfigError):
            DSQLConfig(k=1, alpha=-0.1)

    def test_ratio_target_range(self):
        with pytest.raises(ConfigError):
            DSQLConfig(k=1, phase2_ratio_target=0.0)
        with pytest.raises(ConfigError):
            DSQLConfig(k=1, phase2_ratio_target=1.5)

    def test_node_budget_positive(self):
        with pytest.raises(ConfigError):
            DSQLConfig(k=1, node_budget=0)
        assert DSQLConfig(k=1, node_budget=None).node_budget is None

    def test_relaxed_requires_bad_vertex(self):
        with pytest.raises(ConfigError):
            DSQLConfig(k=1, relaxed_bad_vertices=True, bad_vertex_skipping=False)

    def test_defaults_are_full_dsql(self):
        c = DSQLConfig(k=3)
        assert c.localized_search
        assert c.single_embedding_mode
        assert c.conflict_skipping
        assert c.bad_vertex_skipping
        assert not c.relaxed_bad_vertices
        assert c.run_phase2


class TestVariants:
    def test_dsql0_flags(self):
        c = DSQLConfig.dsql0(5)
        assert c.localized_search
        assert not (c.single_embedding_mode or c.conflict_skipping or c.bad_vertex_skipping)

    def test_dsql1_flags(self):
        c = DSQLConfig.dsql1(5)
        assert c.single_embedding_mode and not c.conflict_skipping

    def test_dsql2_flags(self):
        c = DSQLConfig.dsql2(5)
        assert c.conflict_skipping and not c.single_embedding_mode
        assert not c.bad_vertex_skipping

    def test_dsql3_flags(self):
        c = DSQLConfig.dsql3(5)
        assert c.conflict_skipping and c.bad_vertex_skipping
        assert not c.single_embedding_mode

    def test_full_flags(self):
        c = DSQLConfig.full(5)
        assert c.single_embedding_mode and c.conflict_skipping and c.bad_vertex_skipping

    def test_dsqlh_flags(self):
        c = DSQLConfig.dsqlh(5)
        assert c.relaxed_bad_vertices

    def test_variant_config_lookup(self):
        for name in VARIANTS:
            assert variant_config(name, 7).k == 7

    def test_variant_config_unknown(self):
        with pytest.raises(ConfigError, match="unknown DSQL variant"):
            variant_config("DSQL99", 1)

    def test_variant_overrides_forwarded(self):
        c = variant_config("DSQL", 3, run_phase2=False, seed=9)
        assert not c.run_phase2
        assert c.seed == 9

    def test_with_k(self):
        c = DSQLConfig(k=3, alpha=0.5)
        c2 = c.with_k(8)
        assert c2.k == 8 and c2.alpha == 0.5 and c.k == 3
