"""Unit tests for the static cost model (repro.cost.estimator).

Edge cases the admission layer depends on: provably-empty searches must
estimate exactly zero (admit free), single-vertex plans must stay finite,
and the plan-level profile memo must actually memoize.
"""

from __future__ import annotations

import math

import pytest

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.cost import (
    DEFAULT_AUTO_BUDGET_FLOOR_MS,
    CostEstimate,
    derive_time_budget_ms,
    raw_cost_profile,
    raw_expansions,
)
from repro.datasets.registry import make_dataset
from repro.exceptions import ConfigError
from repro.graph.query_graph import QueryGraph
from repro.queries.generator import query_set


@pytest.fixture(scope="module")
def graph():
    return make_dataset("yeast", scale=0.1, seed=0)


@pytest.fixture(scope="module")
def session(graph):
    return DSQL(graph, config=DSQLConfig(k=5))


def _some_query(graph, seed=3):
    return query_set(graph, 3, 1, seed=seed)[0]


class TestEmptyPools:
    def test_unknown_label_estimates_zero(self, graph, session):
        # A label absent from the graph empties that pool: the engine can
        # prove emptiness without expanding anything, so the estimate is 0.
        query = QueryGraph(["NO_SUCH_LABEL", "L0"], [(0, 1)])
        estimate = session.estimate(query)
        assert estimate.work_units == 0.0
        assert estimate.is_free
        assert estimate.lower == 0.0 and estimate.upper == 0.0

    def test_free_query_answers_empty_and_identically(self, graph, session):
        query = QueryGraph(["NO_SUCH_LABEL", "L0"], [(0, 1)])
        first = session.query(query)
        second = DSQL(graph, config=DSQLConfig(k=5)).query(query)
        assert first.embeddings == () == second.embeddings
        assert first.coverage == 0 == second.coverage

    def test_empty_profile_is_marked(self, graph, session):
        query = QueryGraph(["NO_SUCH_LABEL"], [])
        plan = session.index_cache.plan_cache.get_or_compile(
            query, session.index_cache
        )
        profile = raw_cost_profile(plan, session.index_cache)
        assert profile.empty
        assert raw_expansions(profile, 10) == 0.0


class TestSingleVertex:
    def test_single_vertex_query_is_finite(self, graph, session):
        query = QueryGraph(["L0"], [])
        estimate = session.estimate(query)
        assert math.isfinite(estimate.work_units)
        assert estimate.work_units > 0.0
        result = session.query(query)
        assert result.stats.nodes_expanded >= 0


class TestEstimateShape:
    def test_band_orders_around_point(self, graph, session):
        estimate = session.estimate(_some_query(graph))
        assert 0.0 < estimate.lower <= estimate.work_units <= estimate.upper
        assert math.isfinite(estimate.upper)

    def test_monotone_in_k(self, graph, session):
        query = _some_query(graph, seed=5)
        plan = session.index_cache.plan_cache.get_or_compile(
            query, session.index_cache
        )
        estimator = session.index_cache.cost_estimator()
        small = estimator.estimate(plan, k=1).raw_expansions
        large = estimator.estimate(plan, k=100).raw_expansions
        assert large >= small

    def test_to_wire_is_json_friendly(self, graph, session):
        wire = session.estimate(_some_query(graph, seed=7)).to_wire()
        assert set(wire) == {
            "work_units",
            "lower",
            "upper",
            "calibration_factor",
            "observations",
        }
        assert all(isinstance(v, (int, float)) for v in wire.values())

    def test_profile_memoized_on_plan(self, graph, session):
        query = _some_query(graph, seed=9)
        plan = session.index_cache.plan_cache.get_or_compile(
            query, session.index_cache
        )
        calls = []

        def builder(p):
            calls.append(p)
            return raw_cost_profile(p, session.index_cache)

        first = plan.cost_profile(builder)
        second = plan.cost_profile(builder)
        assert first is second
        assert len(calls) <= 1  # 0 when an earlier estimate already built it


class TestEstimateApi:
    def test_estimate_requires_plans(self, graph):
        session = DSQL(graph, config=DSQLConfig(k=5, use_plans=False))
        with pytest.raises(ConfigError):
            session.estimate(_some_query(graph))

    def test_estimator_shared_across_sessions(self, graph):
        # Calibration is per *graph*: two sessions over one graph must
        # share the estimator (and therefore the calibration state).
        a = DSQL(graph, config=DSQLConfig(k=5))
        b = DSQL(graph, config=DSQLConfig(k=7))
        assert a.index_cache.cost_estimator() is b.index_cache.cost_estimator()


class TestAutoBudget:
    def _estimate(self, units: float) -> CostEstimate:
        return CostEstimate(
            work_units=units,
            raw_expansions=units,
            lower=units / 2,
            upper=units * 2,
            k=10,
            per_depth=(1.0,),
            calibration_factor=1.0,
            observations=0,
        )

    def test_floor_applies_to_tiny_queries(self):
        budget = derive_time_budget_ms(self._estimate(1.0), work_unit_rate=200.0)
        assert budget == DEFAULT_AUTO_BUDGET_FLOOR_MS

    def test_scales_with_upper_band(self):
        small = derive_time_budget_ms(self._estimate(1e5), work_unit_rate=200.0)
        large = derive_time_budget_ms(self._estimate(1e6), work_unit_rate=200.0)
        assert large == pytest.approx(10 * small)
        # headroom(4) * upper(2e5) / rate(200) = 4000 ms
        assert small == pytest.approx(4000.0)

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            derive_time_budget_ms(self._estimate(10.0), work_unit_rate=0.0)

    def test_config_validates_auto_budget(self):
        with pytest.raises(ConfigError):
            DSQLConfig(k=5, auto_time_budget=True, use_plans=False)
        with pytest.raises(ConfigError):
            DSQLConfig(k=5, work_unit_rate=0.0)

    def test_auto_budget_query_runs_and_observes(self, graph):
        session = DSQL(graph, config=DSQLConfig(k=5, auto_time_budget=True))
        query = _some_query(graph, seed=11)
        before = session.index_cache.cost_estimator().calibration.observations
        result = session.query(query)
        after = session.index_cache.cost_estimator().calibration.observations
        assert result.stats.nodes_expanded >= 0
        assert after == before + 1
