"""Tests for the repro.cost estimation subsystem."""
