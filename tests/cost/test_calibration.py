"""Unit tests for EWMA calibration state and table persistence."""

from __future__ import annotations

import math

import pytest

from repro.cost import (
    CalibrationState,
    CostEstimate,
    EwmaCalibration,
    load_calibration,
    save_calibration,
)


def _estimate(raw: float, factor: float = 1.0, band: float = 8.0) -> CostEstimate:
    point = raw * factor
    return CostEstimate(
        work_units=point,
        raw_expansions=raw,
        lower=point / band,
        upper=point * band,
        k=10,
        per_depth=(1.0,),
        calibration_factor=factor,
        observations=0,
    )


class TestObserve:
    def test_first_observation_seeds_bias(self):
        cal = EwmaCalibration()
        assert cal.factor == pytest.approx(1.0)
        cal.observe(raw_estimate=100.0, actual=300.0)
        # Seeded directly (no EWMA blend on the first sample).
        assert cal.factor == pytest.approx(301.0 / 101.0, rel=1e-6)
        assert cal.observations == 1

    def test_factor_converges_to_ratio(self):
        cal = EwmaCalibration()
        for _ in range(50):
            cal.observe(raw_estimate=100.0, actual=250.0)
        assert cal.factor == pytest.approx(251.0 / 101.0, rel=1e-3)

    def test_band_tightens_with_consistent_observations(self):
        cal = EwmaCalibration()
        wide = cal.band
        for _ in range(30):
            cal.observe(raw_estimate=100.0, actual=100.0)
        assert cal.band < wide
        # Perfectly consistent feedback drives the band to its floor.
        assert cal.band == pytest.approx(2.0)

    def test_band_widens_after_gross_misprediction(self):
        cal = EwmaCalibration()
        for _ in range(30):
            cal.observe(raw_estimate=100.0, actual=100.0)
        tight = cal.band
        for _ in range(10):
            cal.observe(raw_estimate=1.0, actual=100000.0)
        assert cal.band > tight

    def test_returns_signed_log_error(self):
        cal = EwmaCalibration()
        err = cal.observe(raw_estimate=99.0, actual=0.0)
        assert err == pytest.approx(math.log(1.0) - math.log(100.0))

    @pytest.mark.parametrize(
        "raw,actual",
        [
            (float("nan"), 10.0),
            (10.0, float("nan")),
            (float("inf"), 10.0),
            (10.0, float("inf")),
            (-1.0, 10.0),
            (10.0, -1.0),
        ],
    )
    def test_pathological_inputs_ignored(self, raw, actual):
        cal = EwmaCalibration()
        assert cal.observe(raw, actual) == 0.0
        assert cal.observations == 0
        assert cal.factor == pytest.approx(1.0)

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            EwmaCalibration(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaCalibration(alpha=1.5)


class TestSnapshotRestore:
    def test_roundtrip(self):
        cal = EwmaCalibration()
        for actual in (10.0, 30.0, 20.0):
            cal.observe(raw_estimate=15.0, actual=actual)
        clone = EwmaCalibration()
        clone.restore(cal.snapshot())
        assert clone.factor == pytest.approx(cal.factor)
        assert clone.band == pytest.approx(cal.band)
        assert clone.observations == cal.observations

    def test_snapshot_is_detached(self):
        cal = EwmaCalibration()
        cal.observe(100.0, 200.0)
        state = cal.snapshot()
        cal.observe(100.0, 9000.0)
        assert cal.snapshot().log_bias != state.log_bias

    def test_from_dict_sanitizes(self):
        state = CalibrationState.from_dict(
            {"log_bias": float("nan"), "abs_log_err": -3.0, "observations": -2}
        )
        assert state.log_bias == 0.0
        assert state.abs_log_err > 0.0
        assert state.observations == 0


class TestTablePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "calibration.json"
        cal = EwmaCalibration()
        cal.observe(100.0, 321.0)
        save_calibration(path, {"yeast": cal.snapshot(), "human": CalibrationState()})
        table = load_calibration(path)
        assert set(table) == {"yeast", "human"}
        assert table["yeast"].log_bias == pytest.approx(cal.snapshot().log_bias)
        assert table["yeast"].observations == 1
        assert table["human"].observations == 0

    def test_missing_file_returns_none(self, tmp_path):
        assert load_calibration(tmp_path / "nope.json") is None

    def test_corrupt_file_returns_none(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        assert load_calibration(path) is None

    def test_wrong_version_returns_none(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"version": 99, "graphs": {}}', encoding="utf-8")
        assert load_calibration(path) is None

    def test_non_dict_entries_skipped(self, tmp_path):
        path = tmp_path / "mixed.json"
        path.write_text(
            '{"version": 1, "graphs": {"ok": {"observations": 3}, "bad": 7}}',
            encoding="utf-8",
        )
        table = load_calibration(path)
        assert set(table) == {"ok"}
        assert table["ok"].observations == 3


class TestEstimatorCalibrationFlow:
    def test_observe_shifts_future_estimates(self):
        # Synthetic check that factor application is multiplicative on the
        # raw model output: estimator-level behavior is covered end-to-end
        # in tests/cost/test_estimator.py; this pins the algebra.
        cal = EwmaCalibration()
        raw = 100.0
        cal.observe(raw, 400.0)
        estimate = _estimate(raw, factor=cal.factor, band=cal.band)
        assert estimate.work_units == pytest.approx(raw * cal.factor)
        assert estimate.lower <= estimate.work_units <= estimate.upper
