"""Shared fixtures and reference implementations for the test suite.

The reference implementations here are deliberately naive (itertools-based
brute force); they are the ground truth the optimized library code is tested
against on small instances.
"""

from __future__ import annotations

import random
from itertools import combinations, permutations
from typing import FrozenSet, List, Sequence, Set, Tuple

import pytest

from repro.datasets.examples import dbpedia_flavor, figure1, figure2, imdb_flavor
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph


# ----------------------------------------------------------------------
# Reference (brute-force) implementations
# ----------------------------------------------------------------------
def brute_force_embeddings(graph: LabeledGraph, query: QueryGraph) -> List[Tuple[int, ...]]:
    """Every embedding by trying all injective label-respecting assignments."""
    buckets = [list(graph.vertices_with_label(query.label(u))) for u in range(query.size)]
    results: List[Tuple[int, ...]] = []

    def recurse(u: int, chosen: List[int], used: Set[int]) -> None:
        if u == query.size:
            results.append(tuple(chosen))
            return
        for v in buckets[u]:
            if v in used:
                continue
            ok = True
            for u2 in query.neighbors(u):
                if u2 < u and not graph.has_edge(chosen[u2], v):
                    ok = False
                    break
            if ok:
                chosen.append(v)
                used.add(v)
                recurse(u + 1, chosen, used)
                used.discard(v)
                chosen.pop()

    recurse(0, [], set())
    # Verify remaining edges (u2 > u handled implicitly by full recursion,
    # but double-check for safety).
    verified = []
    for mapping in results:
        if all(graph.has_edge(mapping[a], mapping[b]) for a, b in query.edges()):
            verified.append(mapping)
    return verified


def brute_force_distinct_vertex_sets(
    graph: LabeledGraph, query: QueryGraph
) -> Set[FrozenSet[int]]:
    """All embeddings collapsed to distinct vertex sets."""
    return {frozenset(m) for m in brute_force_embeddings(graph, query)}


def brute_force_optimal_coverage(
    vertex_sets: Sequence[FrozenSet[int]], k: int
) -> int:
    """Exact max coverage by trying every <=k-subset (tiny instances only)."""
    best = 0
    sets = list(vertex_sets)
    for size in range(0, min(k, len(sets)) + 1):
        for combo in combinations(sets, size):
            cover = len(set().union(*combo)) if combo else 0
            best = max(best, cover)
    return best


def random_labeled_graph(
    num_vertices: int,
    num_labels: int,
    edge_prob: float,
    seed: int,
) -> LabeledGraph:
    """Small Erdős–Rényi labeled graph for randomized tests."""
    rng = random.Random(seed)
    labels = [f"L{rng.randrange(num_labels)}" for _ in range(num_vertices)]
    edges = [
        (u, v)
        for u in range(num_vertices)
        for v in range(u + 1, num_vertices)
        if rng.random() < edge_prob
    ]
    return LabeledGraph(labels, edges)


def connected_query_from(graph: LabeledGraph, num_edges: int, seed: int) -> QueryGraph:
    """A random connected query sampled from ``graph`` (test-local copy)."""
    from repro.queries.generator import random_query

    return random_query(graph, num_edges, rng=random.Random(seed))


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def fig1():
    """(graph, query) of the paper's Figure 1."""
    return figure1()


@pytest.fixture(scope="session")
def fig2():
    """(graph, query) of the paper's Figure 2 / Example 2."""
    return figure2()


@pytest.fixture(scope="session")
def imdb_small():
    """Small IMDB-flavour affiliation graph and its Section 7.2 query."""
    return imdb_flavor(num_people=300, num_series=60, seed=3)


@pytest.fixture(scope="session")
def dbpedia_small():
    """Small DBpedia-flavour occupation graph and its B.1 query."""
    return dbpedia_flavor(num_people=400, seed=5)


@pytest.fixture()
def triangle_query():
    """A 3-node triangle query with distinct labels."""
    return QueryGraph(["x", "y", "z"], [(0, 1), (1, 2), (0, 2)])


@pytest.fixture()
def path_query():
    """A 3-node path query a-b-c."""
    return QueryGraph(["a", "b", "c"], [(0, 1), (1, 2)])
