"""Profiling-hook dispatch: every callback fires at its documented point."""

from __future__ import annotations

import pytest

import repro.core.search as search_mod
from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.observability import (
    Instrumentation,
    ProfilingHooks,
    default_instrumentation,
    get_default_instrumentation,
)


class RecordingHooks(ProfilingHooks):
    def __init__(self):
        self.level_starts = []
        self.embeddings = []
        self.swaps = []
        self.ticks = []

    def on_level_start(self, phase, level, query_id=None):
        self.level_starts.append((phase, level, query_id))

    def on_embedding_emitted(self, phase, level, embedding, query_id=None):
        self.embeddings.append((phase, level, tuple(embedding), query_id))

    def on_swap(self, level, benefit, loss, accepted, query_id=None):
        self.swaps.append((level, benefit, loss, accepted, query_id))

    def on_deadline_tick(self, nodes_expanded, remaining_ms, stride, query_id=None):
        self.ticks.append((nodes_expanded, remaining_ms, stride, query_id))


@pytest.fixture()
def swap_case():
    """A deterministic (graph, query, k) where Phase 2 runs real levels.

    Found by scanning the random-instance space: with this seed Phase 1
    hands over an overlapping 6-collection that Lemma 4 cannot dismiss, so
    Phase 2 sweeps two levels and the SWAP-alpha criterion both accepts and
    rejects candidates.
    """
    from tests.conftest import connected_query_from, random_labeled_graph

    graph = random_labeled_graph(30, 2, 0.2, seed=8)
    query = connected_query_from(graph, 3, seed=15)
    return graph, query


def test_phase_hooks_fire(swap_case):
    graph, query = swap_case
    hooks = RecordingHooks()
    config = DSQLConfig(k=6, alpha=0.0, phase2_ratio_target=1.0)
    session = DSQL(graph, config=config, instrumentation=Instrumentation(hooks=hooks))
    result = session.query(query)
    assert result.stats.phase2_ran
    assert result.stats.phase2_swaps >= 1

    phases = {phase for phase, _, _ in hooks.level_starts}
    assert "phase1" in phases and "phase2" in phases
    # Phase 1 emitted at least the k accepted embeddings.
    assert sum(1 for p, *_ in hooks.embeddings if p == "phase1") >= 6
    # Phase 2 evaluated the SWAP-alpha criterion on positive-benefit
    # candidates; the hook sees every decision with its inputs.
    assert hooks.swaps
    accepts = [s for s in hooks.swaps if s[3]]
    assert len(accepts) == result.stats.phase2_swaps
    for level, benefit, loss, accepted, query_id in hooks.swaps:
        assert benefit > 0
        assert accepted == (benefit >= loss)  # alpha = 0
        assert query_id == 0
    assert not hooks.ticks  # no time budget armed


def test_deadline_tick_fires_per_stride(monkeypatch, swap_case):
    graph, query = swap_case
    monkeypatch.setattr(search_mod, "DEADLINE_CHECK_STRIDE", 1)
    hooks = RecordingHooks()
    config = DSQLConfig(k=3, time_budget_ms=60_000.0)
    session = DSQL(graph, config=config, instrumentation=Instrumentation(hooks=hooks))
    result = session.query(query)
    assert not result.stats.deadline_exhausted
    assert len(hooks.ticks) == result.stats.nodes_expanded
    for nodes_expanded, remaining_ms, stride, _ in hooks.ticks:
        assert stride == 1
        assert remaining_ms > 0
        assert nodes_expanded >= 1


def test_hook_exception_aborts_query(swap_case):
    graph, query = swap_case

    class Tripwire(ProfilingHooks):
        def on_level_start(self, phase, level, query_id=None):
            raise RuntimeError("tripwire")

    session = DSQL(graph, k=3, instrumentation=Instrumentation(hooks=Tripwire()))
    with pytest.raises(RuntimeError, match="tripwire"):
        session.query(query)


def test_optimized_engine_reports_sq_phase(imdb_small):
    from repro.isomorphism.optimized import OptimizedQSearchEngine

    graph, query = imdb_small
    hooks = RecordingHooks()
    engine = OptimizedQSearchEngine(
        graph, query, instrumentation=Instrumentation(hooks=hooks)
    )
    emitted = sum(1 for _ in engine.embeddings())
    assert emitted > 0
    assert len(hooks.embeddings) == emitted
    assert all(p == "sq" and level == -1 for p, level, _, _ in hooks.embeddings)


def test_default_instrumentation_is_picked_up(swap_case):
    graph, query = swap_case
    hooks = RecordingHooks()
    assert get_default_instrumentation() is None
    with default_instrumentation(Instrumentation(hooks=hooks)) as instr:
        session = DSQL(graph, k=3)
        assert session.instrumentation is instr
        session.query(query)
    assert get_default_instrumentation() is None
    assert hooks.level_starts


def test_disabled_sessions_skip_hooks(swap_case):
    graph, query = swap_case
    session = DSQL(graph, k=3)
    assert session.instrumentation is None
    session.query(query)  # nothing to assert beyond "no instrumentation ran"
