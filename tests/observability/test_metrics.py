"""Metrics-registry unit tests: bucket semantics, resets, thread-safety."""

from __future__ import annotations

import threading

import pytest

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.observability import Instrumentation
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counters_line,
    merge_snapshots,
    record_search_stats,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_reset(self):
        c = Counter("c")
        c.inc(7)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("g")
        g.set(10)
        g.inc(-3)
        assert g.value == 7


class TestHistogram:
    def test_le_bucket_semantics(self):
        # Bounds are inclusive upper bounds (Prometheus `le`): a value equal
        # to a bound lands in that bound's bucket, not the next one.
        h = Histogram("h", (1, 10, 100))
        for value in (0, 1, 1.0):
            h.observe(value)
        h.observe(10)  # edge: exactly on the second bound
        h.observe(10.5)
        h.observe(100)
        h.observe(101)  # overflow: above every bound
        assert h.bucket_counts() == [3, 1, 2, 1]
        assert h.count == 7
        assert h.sum == pytest.approx(0 + 1 + 1 + 10 + 10.5 + 100 + 101)

    def test_overflow_bucket_is_last(self):
        h = Histogram("h", (5,))
        h.observe(6)
        assert h.bucket_counts() == [0, 1]

    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram("h", (1, 1, 2))
        with pytest.raises(ValueError):
            Histogram("h", (3, 2))
        with pytest.raises(ValueError):
            Histogram("h", ())

    def test_snapshot_and_reset(self):
        h = Histogram("h", (1, 2))
        h.observe(1.5)
        snap = h.snapshot()
        assert snap == {"buckets": [1.0, 2.0], "counts": [0, 1, 0], "sum": 1.5, "count": 1}
        h.reset()
        assert h.count == 0
        assert h.bucket_counts() == [0, 0, 0]


class TestRegistry:
    def test_create_on_first_use_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", (1, 2)) is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]

    def test_reset_zeroes_but_keeps_instruments(self):
        # The between-queries contract: reset() zeroes values while keeping
        # instrument identities, so held references stay live.
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(3)
        reg.histogram("h", (1,)).observe(0.5)
        reg.reset()
        assert c.value == 0
        assert reg.counter("c") is c
        assert reg.histogram("h").count == 0

    def test_snapshot_is_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", (1,)).observe(3)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["c"] == 2
        assert snap["h"]["count"] == 1

    def test_counter_reset_between_queries(self, fig1):
        instr = Instrumentation()
        session = DSQL(fig1[0], k=2, instrumentation=instr)
        session.query(fig1[1])
        first = instr.metrics.counter("search.nodes_expanded").value
        assert first > 0
        instr.metrics.reset()
        assert instr.metrics.counter("search.nodes_expanded").value == 0
        session.query(fig1[1])
        assert instr.metrics.counter("search.nodes_expanded").value == first


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self):
        reg = MetricsRegistry()
        threads = 8
        per_thread = 10_000
        barrier = threading.Barrier(threads)

        def work():
            counter = reg.counter("shared")
            hist = reg.histogram("h", (1, 2, 3))
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()
                hist.observe(2)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert reg.counter("shared").value == threads * per_thread
        hist = reg.histogram("h")
        assert hist.count == threads * per_thread
        assert hist.bucket_counts()[1] == threads * per_thread

    def test_thread_strategy_batch_flushes_consistently(self, imdb_small):
        from repro.parallel.executor import BatchExecutor

        graph, query = imdb_small
        instr = Instrumentation()
        session = DSQL(graph, k=3, instrumentation=instr)
        executor = BatchExecutor(session, strategy="thread", jobs=2)
        results = executor.run([query] * 6)
        assert len(results) == 6
        snap = instr.metrics.snapshot()
        assert snap["executor.queries"] == 6
        # One distinct structure: one real search, five memo replays.
        assert snap["executor.searches"] == 1
        assert snap["cache.query.hit"] == 5
        assert snap["cache.query.miss"] == 1


class TestSearchStatsFlush:
    def test_record_search_stats_mapping(self):
        from repro.core.state import SearchStats

        stats = SearchStats()
        stats.nodes_expanded = 11
        stats.conflict_skips = 3
        stats.bad_vertex_skips = 2
        stats.phase2_swaps = 1
        stats.phase2_ran = True
        stats.deadline_exhausted = True
        reg = MetricsRegistry()
        record_search_stats(reg, stats)
        snap = reg.snapshot()
        assert snap["search.nodes_expanded"] == 11
        assert snap["prune.conflict_skip"] == 3
        assert snap["prune.bad_vertex_skip"] == 2
        assert snap["phase2.swap_accept"] == 1
        assert snap["phase2.ran"] == 1
        assert snap["deadline.exhausted"] == 1
        assert snap["query.total"] == 1

    def test_counters_line_mentions_nonzero_only(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.counter("zero")
        line = counters_line(reg)
        assert line.startswith("metrics: ")
        assert "a=2" in line
        assert "zero" not in line

    def test_merge_snapshots_sums_scalars(self):
        merged = merge_snapshots(
            [
                {"a": 1, "flag": True, "h": {"count": 2}},
                None,
                {"a": 2.5, "b": 1},
            ]
        )
        assert merged == {"a": 3.5, "b": 1}
