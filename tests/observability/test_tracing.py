"""Trace-schema validation and JSONL round-trip through a real query."""

from __future__ import annotations

import logging

import pytest

from repro.core.dsql import DSQL
from repro.observability import (
    Instrumentation,
    JsonlSink,
    ListSink,
    Tracer,
    configure_logging,
    read_jsonl,
    validate_event,
)
from repro.observability.tracing import TRACE_EVENT_SCHEMA


def _event(**overrides):
    base = {
        "event": "span",
        "name": "phase1",
        "query_id": 0,
        "level": None,
        "t_start_ms": 1.0,
        "duration_ms": 2.0,
        "fields": {},
    }
    base.update(overrides)
    return base


class TestValidateEvent:
    def test_accepts_well_formed_span_and_point(self):
        validate_event(_event())
        validate_event(_event(event="point", duration_ms=None))

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_event(["not", "a", "dict"])

    def test_rejects_missing_key(self):
        bad = _event()
        del bad["fields"]
        with pytest.raises(ValueError, match="missing key"):
            validate_event(bad)

    def test_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown keys"):
            validate_event(_event(extra=1))

    def test_rejects_wrong_type(self):
        with pytest.raises(ValueError, match="t_start_ms"):
            validate_event(_event(t_start_ms="now"))

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            validate_event(_event(event="metric"))

    def test_span_requires_duration(self):
        with pytest.raises(ValueError, match="duration_ms"):
            validate_event(_event(duration_ms=None))


class TestTracer:
    def test_point_and_spans_are_schema_valid(self):
        sink = ListSink()
        tracer = Tracer(sink)
        tracer.point("memo.lookup", query_id=3, hit=True)
        with tracer.span("query", query_id=3, k=2) as fields:
            fields["coverage"] = 9
        tracer.emit_span("phase1.level", 100.0, query_id=3, level=1, expansions=5)
        assert len(sink.events) == 3
        for event in sink.events:
            validate_event(event)
        point, span, level_span = sink.events
        assert point["event"] == "point" and point["fields"] == {"hit": True}
        assert span["fields"] == {"k": 2, "coverage": 9}
        assert span["duration_ms"] >= 0
        assert level_span["level"] == 1
        assert level_span["fields"]["expansions"] == 5

    def test_span_emitted_even_when_body_raises(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("query"):
                raise RuntimeError("boom")
        assert len(sink.events) == 1
        validate_event(sink.events[0])


class TestJsonlRoundTrip:
    def test_query_trace_round_trips(self, imdb_small, tmp_path):
        graph, query = imdb_small
        path = tmp_path / "trace.jsonl"
        instr = Instrumentation(tracer=Tracer(JsonlSink(path)))
        session = DSQL(graph, k=3, instrumentation=instr)
        session.query_many([query, query])
        instr.close()

        # read_jsonl validates every line against TRACE_EVENT_SCHEMA.
        events = read_jsonl(path)
        assert events
        assert set(TRACE_EVENT_SCHEMA) == set(events[0])
        names = [e["name"] for e in events]
        # At least one span per phase of the pipeline actually run.
        assert "query" in names
        assert "candidate_build" in names
        assert "phase1" in names
        # Per-level spans carry an expansion counter.
        level_spans = [e for e in events if e["name"] == "phase1.level"]
        assert level_spans
        for span in level_spans:
            assert span["event"] == "span"
            assert span["level"] >= 0
            assert span["fields"]["expansions"] >= 0
        # The memo emits one lookup point per query_many step: miss then hit.
        lookups = [e for e in events if e["name"] == "memo.lookup"]
        assert [e["fields"]["hit"] for e in lookups] == [False, True]

    def test_sink_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.write(_event())
        sink.close()
        sink.close()
        assert len(read_jsonl(tmp_path / "t.jsonl")) == 1


class TestLogging:
    def test_repro_logger_has_null_handler_by_default(self):
        handlers = logging.getLogger("repro").handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)

    def test_configure_logging_is_idempotent(self):
        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        try:
            configure_logging("debug")
            configure_logging("warning")
            streams = [
                h
                for h in logger.handlers
                if isinstance(h, logging.StreamHandler)
                and not isinstance(h, logging.NullHandler)
            ]
            assert len(streams) == 1
            assert logger.level == logging.WARNING
        finally:
            logger.handlers[:] = before
            logger.setLevel(logging.NOTSET)
