"""Unit tests for :mod:`repro.experiments.paper` (the experiment runners)."""

from __future__ import annotations

import pytest

from repro.baselines.enumerate_then_cover import STRATEGIES
from repro.core.config import DSQLConfig
from repro.experiments.paper import (
    ablation,
    run_com,
    run_dsql,
    sweep_k,
    sweep_query_size,
    table2_counts,
    table3_firstk,
    table4_strategies,
)

from tests.conftest import connected_query_from, random_labeled_graph


@pytest.fixture(scope="module")
def setting():
    graph = random_labeled_graph(60, 3, 0.12, seed=77)
    queries = [connected_query_from(graph, 3, seed=s) for s in range(4)]
    return graph, queries


class TestBatchRunners:
    def test_run_dsql(self, setting):
        graph, queries = setting
        summary = run_dsql(graph, queries, DSQLConfig(k=5))
        assert len(summary) == 4
        assert summary.mean_coverage <= summary.mean_max + 1e-9

    def test_run_com(self, setting):
        graph, queries = setting
        summary = run_com(graph, queries, 5)
        assert len(summary) == 4


class TestTableRunners:
    def test_table2(self, setting):
        graph, queries = setting
        row = table2_counts(graph, queries, dataset="toy")
        assert row.dataset == "toy"
        assert row.total == 4
        assert row.worst >= row.average or row.total == 0

    def test_table3(self, setting):
        graph, queries = setting
        summary = table3_firstk(graph, queries, 5)
        assert len(summary) == 4
        assert 0 <= summary.mean_ratio <= 1

    def test_table4(self, setting):
        graph, queries = setting
        result = table4_strategies(graph, queries, 5)
        names = {o.strategy for o in result.outcomes}
        assert names == set(STRATEGIES) | {"DSQL"}
        assert result.generation_millis >= 0
        assert result.coverage_of("DSQL") > 0
        with pytest.raises(KeyError):
            result.coverage_of("nope")


class TestSweeps:
    def test_sweep_k_series_aligned(self, setting):
        graph, queries = setting
        series = sweep_k(graph, queries, [2, 4])
        for values in series.values():
            assert len(values) == 2
        # DSQL coverage non-decreasing in k on the same batch.
        assert series["DSQL cov"][1] >= series["DSQL cov"][0] - 1e-9

    def test_sweep_k_extra_solver(self, setting):
        graph, queries = setting
        series = sweep_k(
            graph,
            queries,
            [3],
            solvers={"DSQLh": lambda k: DSQLConfig.dsqlh(k, node_budget=100_000)},
        )
        assert "DSQLh cov" in series and len(series["DSQLh cov"]) == 1

    def test_sweep_query_size(self, setting):
        graph, _ = setting
        batches = {
            2: [connected_query_from(graph, 2, seed=s) for s in range(3)],
            4: [connected_query_from(graph, 4, seed=s) for s in range(3)],
        }
        series = sweep_query_size(graph, batches, 4)
        assert len(series["DSQL cov"]) == 2


class TestAblation:
    def test_all_variants_run(self, setting):
        graph, queries = setting
        out = ablation(graph, queries, 4, variants=("DSQL0", "DSQL2", "DSQL"))
        assert set(out) == {"DSQL0", "DSQL2", "DSQL"}
        # Pruning-only variants keep DSQL0's coverage.
        assert out["DSQL2"].mean_coverage == pytest.approx(out["DSQL0"].mean_coverage)
