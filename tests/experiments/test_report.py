"""Unit tests for :mod:`repro.experiments.report`."""

from __future__ import annotations

from repro.experiments.measurement import BatchSummary, QueryRecord
from repro.experiments.report import (
    SUMMARY_HEADERS,
    render_series,
    render_summaries,
    render_table,
    summary_row,
)


class TestRenderTable:
    def test_headers_and_rows(self):
        text = render_table(["a", "bb"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert "--" in lines[1]
        assert len(lines) == 4

    def test_numeric_right_aligned(self):
        text = render_table(["col"], [["5"], ["55555"]])
        lines = text.splitlines()
        assert lines[2].endswith("5")
        assert lines[2].startswith(" ")

    def test_float_formatting(self):
        text = render_table(["v"], [[1.23456]])
        assert "1.235" in text

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert len(text.splitlines()) == 2


class TestSummaryRendering:
    def _summary(self):
        s = BatchSummary(label="dsql")
        s.add(QueryRecord(seconds=0.002, coverage=10, max_value=20, num_embeddings=3))
        return s

    def test_summary_row_width(self):
        assert len(summary_row(self._summary())) == len(SUMMARY_HEADERS)

    def test_render_summaries_title(self):
        text = render_summaries([self._summary()], title="Table X")
        assert text.startswith("Table X\n")
        assert "dsql" in text

    def test_render_summaries_no_title(self):
        assert not render_summaries([self._summary()]).startswith("\n")


class TestRenderSeries:
    def test_series_block(self):
        text = render_series("k", [10, 20], {"DSQL": [1.0, 2.0], "COM": [3.0, 4.0]})
        lines = text.splitlines()
        assert lines[0].split() == ["k", "10", "20"]
        assert any(line.startswith("DSQL") for line in lines)
        assert any(line.startswith("COM") for line in lines)

    def test_series_value_format(self):
        text = render_series("x", [1], {"s": [0.123456]}, value_format="{:.4f}")
        assert "0.1235" in text
