"""Unit tests for :mod:`repro.experiments.runner`."""

from __future__ import annotations

import pytest

from repro.core.config import DSQLConfig
from repro.experiments.runner import (
    SolverOutcome,
    com_solver,
    compare_solvers,
    dsql_solver,
    first_k_solver,
    random_start_solver,
    run_batch,
    run_executor_batch,
)

from tests.conftest import connected_query_from, random_labeled_graph


@pytest.fixture(scope="module")
def setting():
    graph = random_labeled_graph(40, 3, 0.15, seed=33)
    queries = [connected_query_from(graph, 2, seed=s) for s in range(4)]
    return graph, queries


class TestAdapters:
    def test_dsql_solver_outcome(self, setting):
        graph, queries = setting
        outcome = dsql_solver(DSQLConfig(k=4))(graph, queries[0])
        assert isinstance(outcome, SolverOutcome)
        assert outcome.coverage <= outcome.max_value

    def test_dsql_max_rule(self, setting):
        graph, queries = setting
        outcome = dsql_solver(DSQLConfig(k=4))(graph, queries[0])
        if outcome.optimal:
            assert outcome.max_value == outcome.coverage
        else:
            assert outcome.max_value == 4 * queries[0].size

    def test_com_solver(self, setting):
        graph, queries = setting
        outcome = com_solver(4)(graph, queries[0])
        assert outcome.max_value == 4 * queries[0].size
        assert not outcome.optimal

    def test_first_k_solver(self, setting):
        graph, queries = setting
        outcome = first_k_solver(4)(graph, queries[0])
        assert outcome.num_embeddings <= 4

    def test_random_start_solver(self, setting):
        graph, queries = setting
        outcome = random_start_solver(4)(graph, queries[0])
        assert outcome.num_embeddings <= 4


class TestRunBatch:
    def test_records_per_query(self, setting):
        graph, queries = setting
        summary = run_batch(graph, queries, dsql_solver(DSQLConfig(k=3)), label="dsql")
        assert len(summary) == len(queries)
        assert summary.label == "dsql"
        assert all(r.seconds >= 0 for r in summary.records)

    def test_compare_solvers(self, setting):
        graph, queries = setting
        out = compare_solvers(
            graph,
            queries,
            {"DSQL": dsql_solver(DSQLConfig(k=3)), "COM": com_solver(3)},
        )
        assert set(out) == {"DSQL", "COM"}
        assert all(len(s) == len(queries) for s in out.values())

    def test_dsql_dominates_baselines_in_coverage(self, setting):
        """The paper's headline: DSQL coverage >= the baselines' coverage."""
        graph, queries = setting
        out = compare_solvers(
            graph,
            queries,
            {
                "DSQL": dsql_solver(DSQLConfig(k=5)),
                "FIRSTK": first_k_solver(5),
            },
        )
        assert out["DSQL"].mean_coverage >= out["FIRSTK"].mean_coverage - 1e-9


class TestRunExecutorBatch:
    @pytest.mark.parametrize("strategy", ["serial", "thread"])
    def test_matches_run_batch_measurements(self, setting, strategy):
        graph, queries = setting
        config = DSQLConfig(k=3)
        serial = run_batch(graph, queries, dsql_solver(config), label="serial")
        summary = run_executor_batch(
            graph, queries, config, strategy=strategy, jobs=2, label="exec"
        )
        assert len(summary) == len(queries)
        assert summary.label == "exec"
        # Timing differs; every result-derived field must not.
        for got, ref in zip(summary.records, serial.records):
            assert got.coverage == ref.coverage
            assert got.max_value == ref.max_value
            assert got.num_embeddings == ref.num_embeddings
            assert got.optimal == ref.optimal

    def test_memo_marks_duplicates(self, setting):
        graph, queries = setting
        summary = run_executor_batch(
            graph, queries + queries, DSQLConfig(k=3), strategy="thread", jobs=2
        )
        assert summary.cache_hits == len(queries)

    def test_deadline_recorded(self, setting, monkeypatch):
        import repro.core.search as search_mod

        monkeypatch.setattr(search_mod, "DEADLINE_CHECK_STRIDE", 1)
        graph, queries = setting
        summary = run_executor_batch(
            graph, queries, DSQLConfig(k=3, time_budget_ms=1e-6)
        )
        assert summary.any_deadline_exhausted
        assert not summary.any_budget_exhausted
