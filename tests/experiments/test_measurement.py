"""Unit tests for :mod:`repro.experiments.measurement`."""

from __future__ import annotations

import pytest

from repro.experiments.measurement import BatchSummary, QueryRecord


def record(
    seconds=0.01,
    coverage=10,
    max_value=20,
    optimal=False,
    budget=False,
    deadline=False,
    cached=False,
):
    return QueryRecord(
        seconds=seconds,
        coverage=coverage,
        max_value=max_value,
        num_embeddings=4,
        optimal=optimal,
        budget_exhausted=budget,
        deadline_exhausted=deadline,
        from_cache=cached,
    )


class TestQueryRecord:
    def test_ratio(self):
        assert record(coverage=5, max_value=20).ratio == 0.25

    def test_ratio_zero_max(self):
        assert record(coverage=0, max_value=0).ratio == 1.0


class TestBatchSummary:
    def test_empty_defaults(self):
        s = BatchSummary(label="x")
        assert s.mean_seconds == 0.0
        assert s.mean_coverage == 0.0
        assert s.mean_ratio == 1.0
        assert s.optimal_fraction == 0.0
        assert len(s) == 0

    def test_means(self):
        s = BatchSummary(label="x")
        s.add(record(seconds=0.01, coverage=10))
        s.add(record(seconds=0.03, coverage=30))
        assert s.mean_seconds == pytest.approx(0.02)
        assert s.mean_millis == pytest.approx(20.0)
        assert s.mean_coverage == pytest.approx(20.0)

    def test_mean_ratio(self):
        s = BatchSummary(label="x")
        s.add(record(coverage=10, max_value=20))
        s.add(record(coverage=20, max_value=20))
        assert s.mean_ratio == pytest.approx(0.75)

    def test_optimal_fraction(self):
        s = BatchSummary(label="x")
        s.add(record(optimal=True))
        s.add(record(optimal=False))
        assert s.optimal_fraction == 0.5

    def test_budget_flag(self):
        s = BatchSummary(label="x")
        s.add(record())
        assert not s.any_budget_exhausted
        s.add(record(budget=True))
        assert s.any_budget_exhausted

    def test_mean_embeddings(self):
        s = BatchSummary(label="x")
        s.add(record())
        assert s.mean_embeddings == 4.0

    def test_deadline_flag(self):
        s = BatchSummary(label="x")
        s.add(record())
        assert not s.any_deadline_exhausted
        s.add(record(deadline=True))
        assert s.any_deadline_exhausted
        # Independent of the node-budget flag.
        assert not s.any_budget_exhausted

    def test_cache_hits(self):
        s = BatchSummary(label="x")
        assert s.cache_hits == 0
        s.add(record())
        s.add(record(cached=True))
        s.add(record(cached=True))
        assert s.cache_hits == 2
