"""Unit tests for :mod:`repro.experiments.workloads`."""

from __future__ import annotations

import pytest

from repro.experiments.workloads import (
    DEFAULT_K,
    DEFAULT_QUERY_EDGES,
    FIG6_GRID,
    FIG8_GRID,
    K_GRID,
    LABEL_DENSITY_GRID,
    QUERY_SIZE_GRID,
    batch_size,
    bench_scale_override,
)


class TestPaperGrids:
    def test_defaults_match_paper(self):
        assert DEFAULT_K == 40
        assert DEFAULT_QUERY_EDGES == 5

    def test_k_grid(self):
        assert K_GRID == [10, 20, 30, 40, 50]

    def test_query_size_grid(self):
        assert QUERY_SIZE_GRID == list(range(1, 11))

    def test_label_density_grid_range(self):
        assert LABEL_DENSITY_GRID[0] == pytest.approx(0.05e-3)
        assert LABEL_DENSITY_GRID[-1] == pytest.approx(0.2e-3)

    def test_figure_panels(self):
        assert "dblp" in FIG6_GRID.datasets
        assert FIG8_GRID.datasets == ["yeast", "human", "uspatent"]


class TestEnvOverrides:
    def test_batch_size_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUERIES", raising=False)
        assert batch_size(7) == 7

    def test_batch_size_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERIES", "123")
        assert batch_size(7) == 123

    def test_batch_size_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERIES", "0")
        with pytest.raises(ValueError):
            batch_size()

    def test_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert bench_scale_override() == 1.0

    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert bench_scale_override() == 2.5

    def test_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            bench_scale_override()
