"""Unit tests for :mod:`repro.queries.ordering`."""

from __future__ import annotations

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.candidates import CandidateIndex
from repro.queries.ordering import rank_of, selectivity_order, selectivity_scores


def _setting():
    # "a" is rare (1 vertex), "b" is common (3 vertices).
    graph = LabeledGraph(["a", "b", "b", "b"], [(0, 1), (0, 2), (0, 3), (1, 2)])
    query = QueryGraph(["a", "b"], [(0, 1)])
    return graph, query, CandidateIndex(graph, query)


class TestScores:
    def test_score_formula(self):
        graph, query, idx = _setting()
        scores = selectivity_scores(query, idx)
        assert scores[0] == idx.size(0) / query.degree(0)
        assert scores[1] == idx.size(1) / query.degree(1)

    def test_single_node_query_score(self):
        graph = LabeledGraph(["a", "a"], [(0, 1)])
        query = QueryGraph(["a"])
        idx = CandidateIndex(graph, query)
        assert selectivity_scores(query, idx) == [2.0]


class TestOrder:
    def test_most_selective_first(self):
        graph, query, idx = _setting()
        assert selectivity_order(query, idx)[0] == 0

    def test_order_is_permutation(self):
        graph, query, idx = _setting()
        order = selectivity_order(query, idx)
        assert sorted(order) == list(range(query.size))

    def test_tie_break_by_node_id(self):
        graph = LabeledGraph(["a", "a"], [(0, 1)])
        query = QueryGraph(["a", "a"], [(0, 1)])
        idx = CandidateIndex(graph, query)
        assert selectivity_order(query, idx) == [0, 1]


class TestRankOf:
    def test_inverse(self):
        ranks = rank_of([2, 0, 1])
        assert ranks == [1, 2, 0]

    def test_empty(self):
        assert rank_of([]) == []
