"""Unit tests for :mod:`repro.queries.qflist`."""

from __future__ import annotations

import pytest

from repro.graph.query_graph import QueryGraph
from repro.queries.qflist import NO_FATHER, resort, validate_qflist


@pytest.fixture()
def star_query():
    # u0 center (label a), u1..u4 leaves (b, b, c, c).
    return QueryGraph(["a", "b", "b", "c", "c"], [(0, 1), (0, 2), (0, 3), (0, 4)])


@pytest.fixture()
def path_query5():
    return QueryGraph(["a", "b", "c", "b", "a"], [(0, 1), (1, 2), (2, 3), (3, 4)])


class TestResortStructure:
    def test_root_is_qlist_first_without_overlap(self, star_query):
        qf = resort(star_query, [0, 1, 2, 3, 4])
        assert qf.entries[0].node == 0
        assert qf.entries[0].father == NO_FATHER

    def test_root_is_first_overlap_node(self, star_query):
        qf = resort(star_query, [0, 1, 2, 3, 4], qovp={3})
        assert qf.entries[0].node == 3

    def test_fathers_adjacent_and_precede(self, star_query, path_query5):
        for q in (star_query, path_query5):
            qf = resort(q, list(range(q.size)))
            validate_qflist(q, qf)

    def test_every_node_once(self, path_query5):
        qf = resort(path_query5, [2, 0, 4, 1, 3])
        assert sorted(e.node for e in qf.entries) == list(range(5))

    def test_degree_one_nodes_shifted_to_end(self, path_query5):
        # Path endpoints u0 and u4 have degree 1.
        qf = resort(path_query5, [1, 0, 2, 3, 4])
        tail = [e.node for e in qf.entries[-2:]]
        assert set(tail) == {0, 4}

    def test_degree_one_root_stays_first(self, path_query5):
        qf = resort(path_query5, [0, 1, 2, 3, 4])
        assert qf.entries[0].node == 0
        validate_qflist(path_query5, qf)

    def test_single_node_query(self):
        q = QueryGraph(["a"])
        qf = resort(q, [0])
        assert len(qf) == 1
        validate_qflist(q, qf)

    def test_single_edge_query(self):
        q = QueryGraph(["a", "b"], [(0, 1)])
        qf = resort(q, [1, 0])
        validate_qflist(q, qf)
        assert qf.entries[0].node == 1

    def test_overlap_neighbors_ranked_before_others(self):
        # Triangle + pendant; overlap = {1, 2} should surface early.
        q = QueryGraph(["a", "b", "c", "d"], [(0, 1), (0, 2), (1, 2), (2, 3)])
        qf = resort(q, [0, 1, 2, 3], qovp={1, 2})
        order = [e.node for e in qf.entries]
        assert order.index(1) < order.index(3)
        assert order.index(2) < order.index(3)


class TestRmStatistics:
    def test_label_rm_counts_later_same_labels(self, star_query):
        qf = resort(star_query, [0, 1, 2, 3, 4])
        order = qf.node_order()
        for u in range(5):
            expected = sum(
                1
                for w in range(5)
                if qf.rank[w] > qf.rank[u] and star_query.label(w) == star_query.label(u)
            )
            assert qf.label_rm[u] == expected, (u, order)

    def test_neighbor_rm_counts_later_neighbors(self, star_query):
        qf = resort(star_query, [0, 1, 2, 3, 4])
        # The center is first, so all 4 leaves come later.
        assert qf.neighbor_rm[0] == 4
        # Leaves have their only neighbor (the center) earlier.
        for leaf in (1, 2, 3, 4):
            assert qf.neighbor_rm[leaf] == 0

    def test_last_node_rm_zero(self, path_query5):
        qf = resort(path_query5, [0, 1, 2, 3, 4])
        last = qf.entries[-1].node
        assert qf.label_rm[last] == 0
        assert qf.neighbor_rm[last] == 0

    def test_rank_is_inverse_of_entries(self, path_query5):
        qf = resort(path_query5, [4, 3, 2, 1, 0])
        for r, entry in enumerate(qf.entries):
            assert qf.rank[entry.node] == r


class TestValidateQflist:
    def test_detects_missing_node(self, star_query):
        qf = resort(star_query, [0, 1, 2, 3, 4])
        broken = qf.__class__(
            entries=qf.entries[:-1],
            rank=qf.rank,
            label_rm=qf.label_rm,
            neighbor_rm=qf.neighbor_rm,
        )
        with pytest.raises(ValueError, match="covers nodes"):
            validate_qflist(star_query, broken)
