"""Unit tests for :mod:`repro.queries.generator`."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import DatasetError
from repro.graph.labeled_graph import LabeledGraph
from repro.queries.generator import iter_query_sets, query_set, random_query

from tests.conftest import random_labeled_graph


@pytest.fixture(scope="module")
def graph():
    return random_labeled_graph(60, 4, 0.15, seed=3)


class TestRandomQuery:
    def test_edge_count(self, graph):
        for z in (1, 3, 5):
            q = random_query(graph, z, rng=random.Random(1))
            assert q.num_edges == z

    def test_connected(self, graph):
        for seed in range(10):
            q = random_query(graph, 4, rng=random.Random(seed))
            assert q.is_connected()

    def test_labels_come_from_graph(self, graph):
        q = random_query(graph, 5, rng=random.Random(2))
        assert set(q.labels) <= graph.label_set()

    def test_query_is_actual_subgraph(self, graph):
        """The sampled query must embed in its source graph (itself)."""
        from tests.conftest import brute_force_embeddings

        q = random_query(graph, 3, rng=random.Random(4))
        assert brute_force_embeddings(graph, q)

    def test_zero_edges_rejected(self, graph):
        with pytest.raises(DatasetError, match="at least 1 edge"):
            random_query(graph, 0)

    def test_too_many_edges_rejected(self):
        g = LabeledGraph(["a", "b"], [(0, 1)])
        with pytest.raises(DatasetError, match="cannot sample"):
            random_query(g, 5)

    def test_restarts_exhaust_small_components(self):
        # Two tiny components: a 5-edge connected query cannot exist.
        g = LabeledGraph(["a"] * 6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        with pytest.raises(DatasetError):
            random_query(g, 5, rng=random.Random(0))

    def test_deterministic_for_seeded_rng(self, graph):
        q1 = random_query(graph, 4, rng=random.Random(9))
        q2 = random_query(graph, 4, rng=random.Random(9))
        assert q1.canonical_key() == q2.canonical_key()


class TestQuerySet:
    def test_count(self, graph):
        qs = query_set(graph, 3, 7, seed=1)
        assert len(qs) == 7

    def test_seeded_batches_reproducible(self, graph):
        a = query_set(graph, 3, 5, seed=42)
        b = query_set(graph, 3, 5, seed=42)
        assert [q.canonical_key() for q in a] == [q.canonical_key() for q in b]

    def test_iter_query_sets_sizes(self, graph):
        batches = dict(iter_query_sets(graph, [1, 2, 3], 4, seed=0))
        assert set(batches) == {1, 2, 3}
        for size, batch in batches.items():
            assert all(q.num_edges == size for q in batch)

    def test_iter_query_sets_distinct_per_size(self, graph):
        batches = dict(iter_query_sets(graph, [2, 3], 3, seed=5))
        keys2 = {q.canonical_key() for q in batches[2]}
        keys3 = {q.canonical_key() for q in batches[3]}
        assert keys2 != keys3
