"""Unit tests for :mod:`repro.baselines.firstk`."""

from __future__ import annotations

from repro.baselines.firstk import first_k_baseline
from repro.graph.validation import embeddings_distinct, validate_embedding

from tests.conftest import connected_query_from, random_labeled_graph


class TestFirstK:
    def test_returns_at_most_k(self):
        graph = random_labeled_graph(30, 2, 0.25, seed=1)
        query = connected_query_from(graph, 2, seed=1)
        r = first_k_baseline(graph, query, 5)
        assert len(r.embeddings) <= 5

    def test_embeddings_valid_and_distinct(self):
        graph = random_labeled_graph(30, 2, 0.25, seed=2)
        query = connected_query_from(graph, 3, seed=2)
        r = first_k_baseline(graph, query, 6)
        assert embeddings_distinct(r.embeddings)
        for emb in r.embeddings:
            validate_embedding(graph, query, emb)

    def test_coverage_and_ratio(self):
        graph = random_labeled_graph(30, 2, 0.25, seed=3)
        query = connected_query_from(graph, 2, seed=3)
        k = 4
        r = first_k_baseline(graph, query, k)
        assert r.coverage == len(set().union(*map(set, r.embeddings)))
        assert r.approx_ratio_lower_bound() == r.coverage / (k * query.size)

    def test_no_matches(self):
        from repro.graph.labeled_graph import LabeledGraph
        from repro.graph.query_graph import QueryGraph

        graph = LabeledGraph(["a", "a"], [(0, 1)])
        r = first_k_baseline(graph, QueryGraph(["a", "z"], [(0, 1)]), 3)
        assert r.embeddings == [] and r.coverage == 0

    def test_first_k_is_localized_hence_overlapping(self):
        """The motivating defect: depth-first matches overlap heavily.

        On a graph with many embeddings, the first k coverage should fall
        well short of k*q (DSQL's whole reason to exist).
        """
        graph = random_labeled_graph(60, 2, 0.25, seed=4)
        query = connected_query_from(graph, 3, seed=4)
        k = 10
        r = first_k_baseline(graph, query, k)
        if len(r.embeddings) == k:
            assert r.coverage < k * query.size
