"""Unit tests for :mod:`repro.baselines.enumerate_then_cover`."""

from __future__ import annotations

import pytest

from repro.baselines.enumerate_then_cover import (
    STRATEGIES,
    generate_all,
    run_all_strategies,
    run_pipeline,
    select_top_k,
)
from repro.coverage.core import coverage
from repro.exceptions import ConfigError

from tests.conftest import (
    brute_force_distinct_vertex_sets,
    connected_query_from,
    random_labeled_graph,
)


@pytest.fixture(scope="module")
def setting():
    graph = random_labeled_graph(30, 2, 0.25, seed=21)
    query = connected_query_from(graph, 2, seed=21)
    return graph, query


class TestGenerateAll:
    def test_matches_brute_force(self, setting):
        graph, query = setting
        got = {frozenset(m) for m in generate_all(graph, query)}
        assert got == brute_force_distinct_vertex_sets(graph, query)


class TestSelectTopK:
    def test_every_strategy_runs(self, setting):
        graph, query = setting
        embeddings = generate_all(graph, query)
        for strategy in STRATEGIES:
            members = select_top_k(embeddings, 4, strategy)
            assert len(members) <= 4

    def test_unknown_strategy(self):
        with pytest.raises(ConfigError, match="unknown strategy"):
            select_top_k([], 3, "SWAP9")

    def test_greedy_at_least_swaps(self, setting):
        """Greedy's (1-1/e) guarantee should beat/match 0.25-swaps here."""
        graph, query = setting
        embeddings = generate_all(graph, query)
        if not embeddings:
            pytest.skip("no embeddings on this seed")
        greedy_cov = coverage(select_top_k(embeddings, 4, "Greedy"))
        for strategy in ("SWAP1", "SWAP2"):
            assert greedy_cov >= 0.5 * coverage(select_top_k(embeddings, 4, strategy))


class TestPipeline:
    def test_run_pipeline_fields(self, setting):
        graph, query = setting
        result = run_pipeline(graph, query, 4, "SWAPalpha")
        assert result.strategy == "SWAPalpha"
        assert result.coverage == coverage(result.members)
        assert result.generation_seconds >= 0
        assert result.num_embeddings >= len(result.members)

    def test_shared_generation(self, setting):
        graph, query = setting
        results = run_all_strategies(graph, query, 4)
        assert set(results) == set(STRATEGIES)
        gens = {r.generation_seconds for r in results.values()}
        assert len(gens) == 1  # one shared stage-1 timing
        nums = {r.num_embeddings for r in results.values()}
        assert len(nums) == 1
