"""Unit tests for :mod:`repro.baselines.random_start`."""

from __future__ import annotations

from repro.baselines.random_start import random_start_search
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.graph.validation import embeddings_distinct, validate_embedding

from tests.conftest import connected_query_from, random_labeled_graph


class TestRandomStart:
    def test_returns_at_most_k(self):
        graph = random_labeled_graph(30, 2, 0.25, seed=11)
        query = connected_query_from(graph, 2, seed=11)
        r = random_start_search(graph, query, 4)
        assert len(r.embeddings) <= 4

    def test_valid_and_distinct(self):
        graph = random_labeled_graph(30, 2, 0.25, seed=12)
        query = connected_query_from(graph, 3, seed=12)
        r = random_start_search(graph, query, 6)
        assert embeddings_distinct(r.embeddings)
        for emb in r.embeddings:
            validate_embedding(graph, query, emb)

    def test_one_embedding_per_root(self):
        graph = random_labeled_graph(40, 2, 0.25, seed=13)
        query = connected_query_from(graph, 2, seed=13)
        r = random_start_search(graph, query, 10)
        # Roots are distinct candidates, so no vertex can anchor two results
        # at the root node position... which node is root depends on
        # ordering; assert distinct vertex sets instead (per-root dedup).
        assert embeddings_distinct(r.embeddings)

    def test_no_candidates(self):
        graph = LabeledGraph(["a", "a"], [(0, 1)])
        r = random_start_search(graph, QueryGraph(["a", "z"], [(0, 1)]), 3)
        assert r.embeddings == []

    def test_seeded_determinism(self):
        graph = random_labeled_graph(30, 2, 0.25, seed=14)
        query = connected_query_from(graph, 2, seed=14)
        assert (
            random_start_search(graph, query, 5, seed=2).embeddings
            == random_start_search(graph, query, 5, seed=2).embeddings
        )

    def test_ratio(self):
        graph = random_labeled_graph(30, 2, 0.25, seed=15)
        query = connected_query_from(graph, 2, seed=15)
        r = random_start_search(graph, query, 5)
        assert r.approx_ratio_lower_bound() == r.coverage / (5 * query.size)
