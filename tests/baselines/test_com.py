"""Unit tests for :mod:`repro.baselines.com` (the COM interleaving baseline)."""

from __future__ import annotations

from repro.baselines.com import com_search
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.graph.validation import embeddings_distinct, validate_embedding

from tests.conftest import (
    brute_force_distinct_vertex_sets,
    connected_query_from,
    random_labeled_graph,
)


class TestComBasics:
    def test_returns_at_most_k(self):
        graph = random_labeled_graph(30, 2, 0.25, seed=5)
        query = connected_query_from(graph, 2, seed=5)
        r = com_search(graph, query, 5)
        assert len(r.embeddings) <= 5

    def test_embeddings_valid_and_distinct(self):
        graph = random_labeled_graph(30, 2, 0.25, seed=6)
        query = connected_query_from(graph, 3, seed=6)
        r = com_search(graph, query, 8)
        assert embeddings_distinct(r.embeddings)
        for emb in r.embeddings:
            validate_embedding(graph, query, emb)

    def test_no_candidates(self):
        graph = LabeledGraph(["a", "a"], [(0, 1)])
        r = com_search(graph, QueryGraph(["a", "z"], [(0, 1)]), 3)
        assert r.embeddings == []
        assert r.regions_opened == 0

    def test_finds_all_when_fewer_than_k(self):
        """With k above the embedding count COM must exhaust every region."""
        for seed in range(5):
            graph = random_labeled_graph(20, 3, 0.2, seed=seed)
            query = connected_query_from(graph, 2, seed=seed + 71)
            expected = brute_force_distinct_vertex_sets(graph, query)
            r = com_search(graph, query, k=10 * max(1, len(expected)))
            assert {frozenset(e) for e in r.embeddings} == expected, seed

    def test_deterministic_for_seed(self):
        graph = random_labeled_graph(30, 2, 0.25, seed=7)
        query = connected_query_from(graph, 2, seed=7)
        a = com_search(graph, query, 5, seed=3)
        b = com_search(graph, query, 5, seed=3)
        assert a.embeddings == b.embeddings

    def test_interleaving_spreads_roots(self):
        """Different regions contribute when enough roots exist."""
        graph = random_labeled_graph(50, 2, 0.2, seed=8)
        query = connected_query_from(graph, 2, seed=8)
        r = com_search(graph, query, 10, seed=1)
        if len(r.embeddings) >= 5:
            qf_roots = {emb[0] for emb in r.embeddings} | {
                v for emb in r.embeddings for v in emb
            }
            assert len(qf_roots) > 1

    def test_budget_flag(self):
        graph = random_labeled_graph(40, 2, 0.35, seed=9)
        query = connected_query_from(graph, 4, seed=9)
        r = com_search(graph, query, 1000, node_budget=100)
        assert r.budget_exhausted

    def test_region_accounting(self):
        graph = random_labeled_graph(25, 2, 0.2, seed=10)
        query = connected_query_from(graph, 2, seed=10)
        r = com_search(graph, query, 10_000)
        assert r.regions_exhausted <= r.regions_opened
