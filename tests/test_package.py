"""Package-level tests: exports, version, exception hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    BudgetExceeded,
    ConfigError,
    DatasetError,
    GraphError,
    QueryError,
    ReproError,
)


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_types_exported(self):
        assert repro.LabeledGraph is not None
        assert repro.QueryGraph is not None
        assert repro.DSQL is not None
        assert repro.DSQLConfig is not None
        assert callable(repro.diversified_search)

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.coverage
        import repro.datasets
        import repro.experiments
        import repro.graph
        import repro.indexes
        import repro.isomorphism
        import repro.queries

        for module in (
            repro.graph,
            repro.indexes,
            repro.queries,
            repro.isomorphism,
            repro.coverage,
            repro.baselines,
            repro.datasets,
            repro.experiments,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc", [GraphError, QueryError, ConfigError, DatasetError, BudgetExceeded]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)

    def test_one_handler_catches_everything(self):
        for exc in (GraphError, QueryError, ConfigError, DatasetError):
            with pytest.raises(ReproError):
                raise exc("boom")
