"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestDatasetsCommand:
    def test_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("yeast", "imdb", "uspatent"):
            assert name in out


class TestScheduleCommand:
    def test_schedule_values(self, capsys):
        assert main(["schedule", "--scans", "3"]) == 0
        out = capsys.readouterr().out
        assert "1.0000" in out and "0.2500" in out

    def test_schedule_stops_near_half(self, capsys):
        main(["schedule", "--scans", "50"])
        out = capsys.readouterr().out
        assert "0.49" in out


class TestQueryCommand:
    def test_dsql_on_yeast(self, capsys):
        code = main(
            [
                "query",
                "--dataset",
                "yeast",
                "--scale",
                "0.2",
                "--queries",
                "3",
                "--edges",
                "3",
                "--k",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ms/query" in out and "DSQL" in out

    def test_com_baseline(self, capsys):
        code = main(
            [
                "query",
                "--dataset",
                "yeast",
                "--scale",
                "0.2",
                "--queries",
                "2",
                "--edges",
                "2",
                "--k",
                "5",
                "--solver",
                "COM",
            ]
        )
        assert code == 0
        assert "COM" in capsys.readouterr().out

    def test_variant_solver(self, capsys):
        code = main(
            [
                "query",
                "--dataset",
                "yeast",
                "--scale",
                "0.2",
                "--queries",
                "2",
                "--edges",
                "2",
                "--k",
                "5",
                "--solver",
                "DSQL1",
                "--no-phase2",
            ]
        )
        assert code == 0

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["query", "--dataset", "nope"])

    def test_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            main(["query", "--dataset", "yeast", "--solver", "XX"])

    def test_cache_summary_line(self, capsys):
        code = main(
            ["query", "--dataset", "yeast", "--scale", "0.2",
             "--queries", "3", "--edges", "3", "--k", "5"]
        )
        assert code == 0
        assert "query cache:" in capsys.readouterr().out

    def test_parallel_strategy(self, capsys):
        code = main(
            ["query", "--dataset", "yeast", "--scale", "0.2",
             "--queries", "3", "--edges", "3", "--k", "5",
             "--strategy", "thread", "--jobs", "2"]
        )
        assert code == 0
        assert "DSQL" in capsys.readouterr().out

    def test_objective_edge_smoke(self, capsys):
        code = main(
            ["query", "--dataset", "yeast", "--scale", "0.2",
             "--queries", "2", "--edges", "3", "--k", "5",
             "--objective", "edge"]
        )
        assert code == 0
        assert "DSQL" in capsys.readouterr().out

    def test_unknown_objective_rejected(self):
        with pytest.raises(SystemExit):
            main(["query", "--dataset", "yeast", "--objective", "treewidth"])

    def test_baseline_rejects_objective(self):
        with pytest.raises(SystemExit):
            main(
                ["query", "--dataset", "yeast", "--solver", "COM",
                 "--objective", "edge"]
            )

    def test_time_budget_accepted(self, capsys):
        code = main(
            ["query", "--dataset", "yeast", "--scale", "0.2",
             "--queries", "2", "--edges", "2", "--k", "5",
             "--time-budget-ms", "60000"]
        )
        assert code == 0

    def test_baseline_rejects_parallel_flags(self):
        with pytest.raises(SystemExit):
            main(
                ["query", "--dataset", "yeast", "--solver", "COM",
                 "--strategy", "thread"]
            )
        with pytest.raises(SystemExit):
            main(
                ["query", "--dataset", "yeast", "--solver", "FIRSTK",
                 "--time-budget-ms", "10"]
            )


class TestExperimentCommand:
    def _run(self, name, capsys, extra=()):
        code = main(
            [
                "experiment",
                name,
                "--dataset",
                "yeast",
                "--scale",
                "0.2",
                "--queries",
                "2",
                "--edges",
                "3",
                "--k",
                "5",
                *extra,
            ]
        )
        assert code == 0
        return capsys.readouterr().out

    def test_table2(self, capsys):
        out = self._run("table2", capsys)
        assert "embeddings" in out and "ms/query" in out

    def test_table3(self, capsys):
        out = self._run("table3", capsys)
        assert "first-k" in out and "DSQL" in out

    def test_table4(self, capsys):
        out = self._run("table4", capsys)
        assert "SWAP1" in out and "Greedy" in out and "generation" in out

    def test_fig6k(self, capsys):
        out = self._run("fig6k", capsys)
        assert "DSQL cov" in out and "COM cov" in out

    def test_fig9(self, capsys):
        out = self._run("fig9", capsys)
        assert "DSQL0" in out and "DSQLh" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])

    def test_table3_accepts_executor_flags(self, capsys):
        out = self._run("table3", capsys, extra=["--strategy", "thread", "--jobs", "2"])
        assert "DSQL" in out

    def test_other_experiments_reject_executor_flags(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table2", "--dataset", "yeast", "--jobs", "2"])
        with pytest.raises(SystemExit):
            main(["experiment", "fig9", "--dataset", "yeast", "--time-budget-ms", "5"])


class TestVersionFlag:
    def test_version_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        from repro import __version__

        assert __version__ in out

    def test_module_invocation_prints_version(self):
        import subprocess
        import sys
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(root / "src"), "PATH": ""},
        )
        assert proc.returncode == 0
        assert proc.stdout.startswith("repro ")


class TestServeCommand:
    def test_serve_without_graphs_rejected(self):
        with pytest.raises(SystemExit) as info:
            main(["serve"])
        assert info.value.code != 0

    def test_bad_graph_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--graph", "no-equals-sign"])

    def test_missing_graph_file_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--graph", "g=/no/such/file.txt"])

    def test_bad_dataset_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--dataset", "yeast@huge"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--dataset", "not-a-dataset"])


class TestServePlanCacheFile:
    def test_plan_cache_file_requires_single_worker(self):
        with pytest.raises(SystemExit) as info:
            main(
                [
                    "serve",
                    "--dataset",
                    "yeast@0.1",
                    "--workers",
                    "2",
                    "--plan-cache-file",
                    "/tmp/plans.json",
                ]
            )
        assert info.value.code != 0

    def test_compression_flag_parses_on_query(self, capsys):
        code = main(
            [
                "query",
                "--dataset",
                "yeast",
                "--scale",
                "0.2",
                "--queries",
                "2",
                "--k",
                "3",
                "--compression",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "coverage" in out
