"""Integration tests for the Section 5 worked examples (Figures 3-5).

These pin the optimization machinery to the paper's own traces:
Example 3 (localized candidates via qfList fathers), Examples 4-5
(labelRm/neighborRm and the candidate cap), Example 6 (conflict tables),
Example 7 (bad-vertex skipping). The two adversarial fixtures are
complementary by construction: figure4's failure conflicts exclude the
fan-out node (so §5.3 node skipping collapses it), figure5's failure
conflicts include it (so only §5.4 bad-vertex marks help).
"""

from __future__ import annotations

import pytest

from repro.core.config import DSQLConfig
from repro.core.phase1 import run_phase1
from repro.core.state import SearchStats
from repro.datasets.paper_figures import figure3, figure4, figure5
from repro.graph.validation import validate_embedding
from repro.indexes.candidates import CandidateIndex
from repro.queries.ordering import selectivity_order
from repro.queries.qflist import resort


def run(graph, query, config):
    stats = SearchStats()
    out = run_phase1(graph, query, config, CandidateIndex(graph, query), stats)
    return out, stats


class TestExample3LocalizedSearch:
    def test_qflist_fathers_localize_hub_children(self):
        graph, query = figure3()
        idx = CandidateIndex(graph, query)
        qlist = selectivity_order(query, idx)
        qf = resort(query, qlist)
        # Every non-root node's father must be adjacent in Q so candidates
        # shrink to a matched neighborhood.
        for entry in qf.entries[1:]:
            assert query.has_edge(entry.node, entry.father)

    def test_embedding_found_through_hub(self):
        graph, query = figure3()
        out, _ = run(graph, query, DSQLConfig(k=3))
        assert len(out.state) >= 1
        for emb in out.state.embeddings:
            validate_embedding(graph, query, emb)

    def test_example4_rm_values(self):
        """Example 4's table: labelRm(u7) = 1 when u7 precedes u4; the hub
        u1 has neighborRm = 4 when it is ranked first."""
        graph, query = figure3()
        qf = resort(query, [0, 4, 5, 6, 2, 1, 3])
        assert qf.entries[0].node == 0
        assert qf.neighbor_rm[0] == 4
        # u7 (index 6) shares label "d" with u4 (index 3); if u7 is ranked
        # before u4, labelRm(u7) = 1 and labelRm(u4) = 0.
        if qf.rank[6] < qf.rank[3]:
            assert qf.label_rm[6] == 1
            assert qf.label_rm[3] == 0


class TestExample6ConflictTables:
    def test_conflict_skipping_collapses_the_fan(self):
        graph, query = figure4(width=60)
        base, s_base = run(graph, query, DSQLConfig.dsql0(5))
        conf, s_conf = run(graph, query, DSQLConfig.dsql2(5))
        # Same answers...
        assert sorted(map(sorted, base.state.embeddings)) == sorted(
            map(sorted, conf.state.embeddings)
        )
        # ...at an order-of-magnitude less backtracking.
        assert s_conf.nodes_expanded * 5 < s_base.nodes_expanded
        assert s_conf.conflict_skips > 0

    def test_bad_vertices_do_not_help_here(self):
        """figure4's backjump target is skipped outright, so §5.4 adds
        nothing on top of §5.3 — the complementarity the ablation plots."""
        graph, query = figure4(width=60)
        _, s2 = run(graph, query, DSQLConfig.dsql2(5))
        _, s3 = run(graph, query, DSQLConfig.dsql3(5))
        assert s3.nodes_expanded == s2.nodes_expanded

    def test_embedding_still_found(self):
        graph, query = figure4(width=60)
        out, _ = run(graph, query, DSQLConfig(k=5))
        assert len(out.state) == 1


class TestExample7BadVertices:
    def test_bad_vertex_marks_collapse_the_rescan(self):
        graph, query = figure5(width=30, teasers=15)
        base, s_base = run(graph, query, DSQLConfig.dsql2(5))
        bad, s_bad = run(graph, query, DSQLConfig.dsql3(5))
        assert sorted(map(sorted, base.state.embeddings)) == sorted(
            map(sorted, bad.state.embeddings)
        )
        assert s_bad.nodes_expanded * 5 < s_base.nodes_expanded
        assert s_bad.bad_vertices_marked > 0
        assert s_bad.bad_vertex_skips > 0

    def test_conflict_tables_do_not_help_here(self):
        """figure5's failure conflicts include the fan node, so §5.3 alone
        saves nothing — the converse complementarity."""
        graph, query = figure5(width=30, teasers=15)
        _, s0 = run(graph, query, DSQLConfig.dsql0(5))
        _, s2 = run(graph, query, DSQLConfig.dsql2(5))
        assert s2.nodes_expanded == s0.nodes_expanded

    def test_good_embedding_found_despite_fanout(self):
        graph, query = figure5(width=30, teasers=15)
        out, _ = run(graph, query, DSQLConfig(k=3))
        assert len(out.state) == 1
        validate_embedding(graph, query, out.state.embeddings[0])

    def test_dsqlh_also_valid(self):
        graph, query = figure5(width=30, teasers=15)
        out, _ = run(graph, query, DSQLConfig.dsqlh(3))
        for emb in out.state.embeddings:
            validate_embedding(graph, query, emb)

    def test_marks_cleared_between_roots(self):
        """Bad marks are scoped to the prefix that justified them: the good
        root's embedding must be found even though the same c-depth
        accumulated marks under the bad root."""
        graph, query = figure5(width=10, teasers=5)
        out, stats = run(graph, query, DSQLConfig.dsql3(5))
        assert len(out.state) == 1
        assert stats.bad_vertices_marked > 0
