"""End-to-end integration tests over the dataset registry and harness."""

from __future__ import annotations

import pytest

from repro.core.config import DSQLConfig
from repro.datasets.registry import make_dataset
from repro.experiments.runner import com_solver, dsql_solver, run_batch
from repro.graph.validation import embeddings_distinct, validate_embedding
from repro.queries.generator import query_set


@pytest.fixture(scope="module")
def yeast():
    return make_dataset("yeast", scale=0.5, seed=1)


@pytest.fixture(scope="module")
def yeast_queries(yeast):
    return query_set(yeast, 4, 6, seed=2)


class TestDatasetPipeline:
    def test_dsql_runs_on_registry_graph(self, yeast, yeast_queries):
        from repro.core.dsql import DSQL

        solver = DSQL(yeast, config=DSQLConfig(k=10))
        for query in yeast_queries:
            result = solver.query(query)
            assert embeddings_distinct(result.embeddings)
            for emb in result.embeddings:
                validate_embedding(yeast, query, emb)

    def test_batch_summary_sane(self, yeast, yeast_queries):
        summary = run_batch(
            yeast, yeast_queries, dsql_solver(DSQLConfig(k=10)), label="DSQL"
        )
        assert len(summary) == len(yeast_queries)
        assert 0.0 <= summary.mean_ratio <= 1.0
        assert summary.mean_coverage <= summary.mean_max + 1e-9

    def test_dsql_vs_com_shape(self, yeast, yeast_queries):
        """The Figure 6 shape on a miniature batch: DSQL covers >= COM."""
        dsql = run_batch(yeast, yeast_queries, dsql_solver(DSQLConfig(k=10)))
        com = run_batch(yeast, yeast_queries, com_solver(10))
        assert dsql.mean_coverage >= com.mean_coverage - 1e-9

    def test_coverage_grows_with_k(self, yeast, yeast_queries):
        small = run_batch(yeast, yeast_queries, dsql_solver(DSQLConfig(k=5)))
        large = run_batch(yeast, yeast_queries, dsql_solver(DSQLConfig(k=20)))
        assert large.mean_coverage >= small.mean_coverage - 1e-9


class TestCrossDatasetSmoke:
    @pytest.mark.parametrize("name", ["wordnet", "epinion", "imdb"])
    def test_small_scale_dataset_query(self, name):
        graph = make_dataset(name, scale=0.01 if name != "imdb" else 0.001, seed=3)
        queries = query_set(graph, 3, 2, seed=4)
        from repro.core.dsql import DSQL

        solver = DSQL(graph, config=DSQLConfig(k=5, node_budget=500_000))
        for query in queries:
            result = solver.query(query)
            for emb in result.embeddings:
                validate_embedding(graph, query, emb)
