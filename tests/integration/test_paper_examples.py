"""Integration tests pinning the paper's worked examples end to end."""

from __future__ import annotations

import pytest

from repro import DSQLConfig, diversified_search
from repro.baselines import com_search, first_k_baseline
from repro.core.dsql import DSQL


class TestExample1TeamFormation:
    """Section 1 / Figure 1: the motivating team query."""

    def test_k2_gives_disjoint_optimal_teams(self, fig1):
        graph, query = fig1
        result = diversified_search(graph, query, k=2)
        assert len(result) == 2
        assert result.is_disjoint()
        assert result.optimal
        assert result.coverage == 8

    def test_level0_anchored_at_distinct_managers(self, fig1):
        """The two teams use distinct PMs — the diversity the paper wants."""
        graph, query = fig1
        result = diversified_search(graph, query, k=2)
        managers = {emb[0] for emb in result.embeddings}
        assert len(managers) == 2

    def test_overlapping_strawman_rejected(self, fig1):
        """The paper's bad answer shares PM/PRG/ST; DSQL's must not."""
        graph, query = fig1
        result = diversified_search(graph, query, k=2)
        a, b = map(set, result.embeddings)
        assert not (a & b)


class TestExample2LevelTrace:
    """Section 4.1 / Figure 2: the level-by-level walk-through."""

    def test_k6_needs_level_2(self, fig2):
        graph, query = fig2
        result = diversified_search(graph, query, k=6, single_embedding_mode=False)
        assert len(result) == 6
        assert result.level == 2

    def test_k2_stops_at_level_0(self, fig2):
        graph, query = fig2
        result = diversified_search(graph, query, k=2)
        assert result.level == 0
        assert result.optimal_reason == "disjoint"

    def test_k5_stops_at_level_1(self, fig2):
        graph, query = fig2
        result = diversified_search(graph, query, k=5, single_embedding_mode=False)
        assert result.level == 1
        assert len(result) == 5

    def test_level2_embedding_overlaps_twice(self, fig2):
        graph, query = fig2
        result = diversified_search(graph, query, k=6, single_embedding_mode=False)
        last = set(result.embeddings[-1])
        earlier = set().union(*(set(e) for e in result.embeddings[:-1]))
        assert len(last & earlier) == 2


class TestCaseStudies:
    def test_imdb_dsql_beats_com_coverage(self, imdb_small):
        """Section 7.2 shape: DSQL coverage >= COM coverage."""
        graph, query = imdb_small
        k = 10
        dsql = diversified_search(graph, query, k=k)
        com = com_search(graph, query, k)
        assert dsql.coverage >= com.coverage

    def test_dbpedia_dsql_beats_first_k(self, dbpedia_small):
        graph, query = dbpedia_small
        k = 10
        dsql = diversified_search(graph, query, k=k)
        firstk = first_k_baseline(graph, query, k)
        assert dsql.coverage >= firstk.coverage

    def test_solver_object_batch(self, dbpedia_small):
        graph, query = dbpedia_small
        solver = DSQL(graph, config=DSQLConfig(k=5))
        results = [solver.query(query) for _ in range(3)]
        assert len({r.coverage for r in results}) == 1  # deterministic
