"""The README's code snippets must keep working."""

from __future__ import annotations


class TestQuickstartSnippet:
    def test_figure1_quickstart(self):
        from repro import diversified_search
        from repro.datasets import figure1

        graph, query = figure1()
        result = diversified_search(graph, query, k=2)
        assert result.summary().startswith("2/2 embeddings, coverage 8")
        assert result.optimal

    def test_own_data_snippet(self):
        from repro import DSQL, DSQLConfig, LabeledGraph, QueryGraph

        graph = LabeledGraph(
            labels=["a", "b", "c", "b"], edges=[(0, 1), (1, 2), (0, 3)]
        )
        query = QueryGraph(["a", "b"], [(0, 1)])
        solver = DSQL(graph, config=DSQLConfig(k=10))
        result = solver.query(query)
        assert result.coverage == 3  # v0 with each of v1/v3: {0, 1, 3}
        assert 0.0 <= result.approx_ratio_lower_bound() <= 1.0
        assert isinstance(result.optimal, bool)
