"""Unit tests for the paper's worked-example fixtures."""

from __future__ import annotations

import pytest

from repro.datasets.examples import dbpedia_flavor, figure1, figure2, imdb_flavor
from repro.graph.validation import is_valid_embedding

from tests.conftest import brute_force_distinct_vertex_sets, brute_force_embeddings


class TestFigure1:
    def test_shape(self, fig1):
        graph, query = fig1
        assert graph.num_vertices == 12
        assert query.size == 4

    def test_paper_embeddings_present(self, fig1):
        graph, query = fig1
        for paper_emb in [(1, 5, 4, 10), (2, 6, 7, 12), (3, 8, 7, 12), (3, 8, 9, 12)]:
            mapping = tuple(v - 1 for v in paper_emb)
            assert is_valid_embedding(graph, query, mapping), paper_emb

    def test_two_disjoint_embeddings_exist(self, fig1):
        graph, query = fig1
        sets = brute_force_distinct_vertex_sets(graph, query)
        assert any(a.isdisjoint(b) for a in sets for b in sets if a != b)


class TestFigure2:
    def test_shape(self, fig2):
        graph, query = fig2
        assert graph.num_vertices == 17
        assert query.size == 3

    def test_traced_embeddings_present(self, fig2):
        """The six embeddings DSQL-P1 collects in Example 2 all exist.

        (The graph hosts a few more embeddings — e.g. (v1, v2, v15) — which
        DSQL never accepts because their vertices are consumed earlier; the
        DSQL-side trace equality is asserted in tests/core/test_phase1.py.)
        """
        graph, query = fig2
        got = brute_force_distinct_vertex_sets(graph, query)
        paper = {
            frozenset(v - 1 for v in s)
            for s in [{1, 2, 3}, {7, 8, 9}, {1, 5, 6}, {14, 2, 15}, {16, 17, 3}, {1, 8, 13}]
        }
        assert paper <= got


class TestImdbFlavor:
    def test_bipartite(self, imdb_small):
        graph, _ = imdb_small
        person = {"Actor", "Actress", "Director"}
        for u, v in graph.edges():
            assert (graph.label(u) in person) != (graph.label(v) in person)

    def test_query_has_matches(self, imdb_small):
        graph, query = imdb_small
        assert brute_force_embeddings(graph, query)

    def test_seeded_determinism(self):
        a = imdb_flavor(num_people=100, num_series=20, seed=1)[0]
        b = imdb_flavor(num_people=100, num_series=20, seed=1)[0]
        assert set(a.edges()) == set(b.edges())


class TestDbpediaFlavor:
    def test_labels(self, dbpedia_small):
        graph, query = dbpedia_small
        assert {"Politician", "Scientist", "Physicist"} <= graph.label_set()
        assert "Other" in graph.label_set()

    def test_query_has_matches(self, dbpedia_small):
        graph, query = dbpedia_small
        assert brute_force_embeddings(graph, query)

    def test_query_is_triangle(self, dbpedia_small):
        _, query = dbpedia_small
        assert query.size == 3 and query.num_edges == 3
