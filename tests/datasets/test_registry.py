"""Unit tests for :mod:`repro.datasets.registry`."""

from __future__ import annotations

import pytest

from repro.datasets.registry import (
    PROFILES,
    dataset_names,
    get_profile,
    make_dataset,
)
from repro.exceptions import DatasetError
from repro.graph.statistics import compute_statistics, label_skew

PAPER_TABLE1 = {
    # name: (|V|, |E|, avg degree) straight from Table 1.
    "yeast": (3101, 12519, 8.07),
    "human": (4675, 86282, 36.92),
    "wordnet": (76854, 213308, 5.55),
    "epinion": (75879, 405741, 10.69),
    "dblp": (317080, 1049866, 6.62),
    "youtube": (1100000, 2900000, 5.26),
    "dbpedia": (809597, 3720000, 9.19),
    "imdb": (4490000, 7490000, 3.34),
    "uspatent": (3770000, 16500000, 8.75),
}


class TestProfiles:
    def test_all_nine_datasets_present(self):
        assert set(dataset_names()) == set(PAPER_TABLE1)

    def test_profiles_match_table1(self):
        for name, (v, e, deg) in PAPER_TABLE1.items():
            p = get_profile(name)
            assert p.num_vertices == v, name
            assert p.num_edges == e, name
            assert p.avg_degree == pytest.approx(deg), name

    def test_unknown_profile(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            get_profile("nope")

    def test_scaled_vertices_floor(self):
        p = get_profile("yeast")
        assert p.scaled_vertices(1e-9) == 50

    def test_scaled_labels_full_scale(self):
        p = get_profile("yeast")
        assert p.scaled_labels(1.0) == p.num_labels
        assert p.scaled_labels(2.0) == p.num_labels

    def test_scaled_labels_shrink(self):
        p = get_profile("youtube")
        assert 2 <= p.scaled_labels(0.01) < p.num_labels


class TestMakeDataset:
    @pytest.mark.parametrize("name", sorted(PAPER_TABLE1))
    def test_bench_scale_builds_with_matching_density(self, name):
        g = make_dataset(name)
        stats = compute_statistics(g)
        profile = get_profile(name)
        assert stats.num_vertices >= 50
        assert stats.average_degree == pytest.approx(profile.avg_degree, rel=0.3)

    def test_full_scale_yeast_matches_table1(self):
        g = make_dataset("yeast", scale=1.0)
        stats = compute_statistics(g)
        assert stats.num_vertices == 3101
        assert stats.average_degree == pytest.approx(8.07, rel=0.1)
        assert stats.num_labels == 31

    def test_imdb_label_skew(self):
        g = make_dataset("imdb", scale=0.005)
        assert label_skew(g, top=3) > 0.8

    def test_imdb_is_bipartite_two_mode(self):
        g = make_dataset("imdb", scale=0.005)
        person_labels = {"L0", "L1", "L2"}
        for u, v in g.edges():
            in_person = (g.label(u) in person_labels, g.label(v) in person_labels)
            assert in_person[0] != in_person[1], (u, v)

    def test_label_override(self):
        g = make_dataset("dblp", scale=0.01, num_labels=5)
        assert len(g.label_set()) <= 5

    def test_seeded_determinism(self):
        a = make_dataset("yeast", seed=7)
        b = make_dataset("yeast", seed=7)
        assert list(a.labels) == list(b.labels)
        assert set(a.edges()) == set(b.edges())

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            make_dataset("yeast", scale=-1)

    def test_name_tags_scale(self):
        assert make_dataset("yeast", scale=0.5).name == "yeast@0.5"
