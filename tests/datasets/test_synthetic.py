"""Unit tests for :mod:`repro.datasets.synthetic`."""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import (
    bipartite_affiliation_graph,
    configuration_graph,
    erdos_renyi_graph,
    lognormal_graph,
    power_law_graph,
)
from repro.exceptions import DatasetError
from repro.graph.labeled_graph import LabeledGraph


def avg_degree(num_vertices, edges):
    return 2 * len(edges) / num_vertices


class TestConfigurationGraph:
    def test_simple_graph(self):
        edges = configuration_graph([2, 2, 2, 2], seed=1)
        g = LabeledGraph(["x"] * 4, edges)
        assert g.num_edges == len(edges)
        assert all(u != v for u, v in edges)

    def test_negative_degree_rejected(self):
        with pytest.raises(DatasetError):
            configuration_graph([1, -1])

    def test_seeded_determinism(self):
        assert configuration_graph([3] * 10, seed=5) == configuration_graph([3] * 10, seed=5)


class TestPowerLaw:
    def test_average_degree_close(self):
        edges = power_law_graph(3000, 8.0, seed=1)
        assert avg_degree(3000, edges) == pytest.approx(8.0, rel=0.15)

    def test_heavy_tail_exists(self):
        edges = power_law_graph(3000, 6.0, seed=2)
        g = LabeledGraph(["x"] * 3000, edges)
        degrees = g.degree_sequence()
        assert max(degrees) > 5 * (sum(degrees) / len(degrees))

    def test_validation(self):
        with pytest.raises(DatasetError):
            power_law_graph(1, 3.0)
        with pytest.raises(DatasetError):
            power_law_graph(10, -1.0)
        with pytest.raises(DatasetError):
            power_law_graph(10, 3.0, exponent=1.0)


class TestLognormal:
    def test_average_degree_close(self):
        edges = lognormal_graph(3000, 10.0, seed=3)
        assert avg_degree(3000, edges) == pytest.approx(10.0, rel=0.15)

    def test_milder_tail_than_power_law(self):
        pl = LabeledGraph(["x"] * 3000, power_law_graph(3000, 8.0, seed=4))
        ln = LabeledGraph(["x"] * 3000, lognormal_graph(3000, 8.0, seed=4))
        assert max(ln.degree_sequence()) < max(pl.degree_sequence())

    def test_validation(self):
        with pytest.raises(DatasetError):
            lognormal_graph(1, 3.0)


class TestBipartite:
    def test_two_mode_structure(self):
        total, edges = bipartite_affiliation_graph(300, 100, 3.0, seed=1)
        assert total == 400
        for p, w in edges:
            assert p < 300 <= w

    def test_average_degree_close(self):
        total, edges = bipartite_affiliation_graph(3000, 1000, 3.3, seed=2)
        assert avg_degree(total, edges) == pytest.approx(3.3, rel=0.2)

    def test_validation(self):
        with pytest.raises(DatasetError):
            bipartite_affiliation_graph(0, 5, 3.0)


class TestErdosRenyi:
    def test_edge_count(self):
        edges = erdos_renyi_graph(200, 6.0, seed=1)
        assert len(edges) == 600

    def test_too_dense_rejected(self):
        with pytest.raises(DatasetError):
            erdos_renyi_graph(4, 100.0)
