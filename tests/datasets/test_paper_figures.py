"""Unit tests for the Figure 3-5 fixtures themselves."""

from __future__ import annotations

import pytest

from repro.datasets.paper_figures import figure3, figure4, figure5
from repro.indexes.candidates import CandidateIndex

from tests.conftest import brute_force_embeddings


class TestFigure3:
    def test_query_shape(self):
        _, query = figure3()
        assert query.size == 7
        assert query.degree(0) == 4  # the hub u1
        assert query.label(3) == query.label(6) == "d"

    def test_graph_hosts_an_embedding(self):
        graph, query = figure3()
        assert brute_force_embeddings(graph, query)

    def test_candidate_localization_sets(self):
        """Example 3: v1's neighbors by label match the paper's sets."""
        graph, query = figure3()
        v1 = 0
        by_label = {}
        for w in graph.neighbors(v1):
            by_label.setdefault(graph.label(w), set()).add(w)
        assert len(by_label["b"]) == 2  # {v2, v12}
        assert len(by_label["c"]) == 2  # {v3, v15}
        assert len(by_label["d"]) == 1  # {v4}
        assert len(by_label["e"]) == 1  # {v5}


class TestFigure4:
    def test_exactly_one_embedding(self):
        graph, query = figure4(width=20)
        embs = brute_force_embeddings(graph, query)
        # One completable region; the pendant e gives exactly one choice.
        assert len({frozenset(m) for m in embs}) == 1

    def test_width_scales_graph(self):
        small, _ = figure4(width=10)
        large, _ = figure4(width=50)
        assert large.num_vertices > small.num_vertices

    def test_fans_pass_static_filters(self):
        """The traps only work if the fan vertices survive candS filtering."""
        graph, query = figure4(width=20)
        idx = CandidateIndex(graph, query)
        # u1 (b) and u2 (c) must have fan-sized candidate pools.
        assert idx.size(1) >= 20
        assert idx.size(2) >= 20

    def test_decoy_not_a_root_candidate(self):
        graph, query = figure4(width=10)
        idx = CandidateIndex(graph, query)
        roots = idx.candidates(0)
        assert len(roots) == 2  # v1 and v6 only


class TestFigure5:
    def test_exactly_one_embedding(self):
        graph, query = figure5(width=12, teasers=6)
        embs = brute_force_embeddings(graph, query)
        assert len({frozenset(m) for m in embs}) == 1

    def test_fans_pass_static_filters(self):
        graph, query = figure5(width=12, teasers=6)
        idx = CandidateIndex(graph, query)
        assert idx.size(1) >= 12  # b-fan
        assert idx.size(2) >= 12  # c-fan
        assert idx.size(3) >= 6   # teaser d's

    def test_query_is_double_triangle_with_pendant(self):
        _, query = figure5()
        assert query.size == 5
        assert query.num_edges == 6
        assert query.degree(0) == 3  # a in both triangles
