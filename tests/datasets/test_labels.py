"""Unit tests for :mod:`repro.datasets.labels`."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.datasets.labels import (
    label_names,
    relabel_to_density,
    skewed_labels,
    uniform_labels,
    zipf_labels,
)
from repro.exceptions import DatasetError


class TestLabelNames:
    def test_names(self):
        assert label_names(3) == ["L0", "L1", "L2"]

    def test_prefix(self):
        assert label_names(2, prefix="X") == ["X0", "X1"]

    def test_zero_rejected(self):
        with pytest.raises(DatasetError):
            label_names(0)


class TestUniform:
    def test_length_and_alphabet(self):
        labels = uniform_labels(500, 7, seed=1)
        assert len(labels) == 500
        assert set(labels) <= set(label_names(7))

    def test_roughly_uniform(self):
        labels = uniform_labels(7000, 7, seed=2)
        counts = Counter(labels)
        assert max(counts.values()) < 2 * min(counts.values())

    def test_seeded_determinism(self):
        assert uniform_labels(100, 5, seed=3) == uniform_labels(100, 5, seed=3)


class TestZipf:
    def test_skew_direction(self):
        labels = zipf_labels(5000, 10, exponent=1.2, seed=1)
        counts = Counter(labels)
        assert counts["L0"] > counts.get("L9", 0)

    def test_exponent_zero_is_uniformish(self):
        labels = zipf_labels(5000, 5, exponent=0.0, seed=1)
        counts = Counter(labels)
        assert max(counts.values()) < 1.5 * min(counts.values())

    def test_negative_exponent_rejected(self):
        with pytest.raises(DatasetError):
            zipf_labels(10, 5, exponent=-1)


class TestSkewed:
    def test_top_fraction_respected(self):
        labels = skewed_labels(10000, 20, top_fraction=0.9, top_count=3, seed=1)
        counts = Counter(labels)
        top = sum(counts.get(f"L{i}", 0) for i in range(3))
        assert 0.85 <= top / 10000 <= 0.95

    def test_parameter_validation(self):
        with pytest.raises(DatasetError):
            skewed_labels(10, 5, top_fraction=1.5)
        with pytest.raises(DatasetError):
            skewed_labels(10, 5, top_count=5)


class TestDensity:
    def test_density_achieved(self):
        labels = relabel_to_density(10000, 0.002, seed=1)
        assert len(set(labels)) <= 20
        assert len(labels) == 10000

    def test_minimum_one_label(self):
        labels = relabel_to_density(100, 1e-9, seed=1)
        assert len(set(labels)) == 1

    def test_invalid_density(self):
        with pytest.raises(DatasetError):
            relabel_to_density(100, 0.0)
