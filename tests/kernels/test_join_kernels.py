"""Property tests: the join kernels against their scalar reference paths.

Every kernel in :mod:`repro.kernels` must agree — contents *and* order —
with the naive computation it replaces in the engines: sorted-list
intersection vs set-membership filtering, bitset AND vs the per-neighbor
``has_edge`` loop of ``is_joinable``. These tests pin that contract on
randomized inputs, including the gallop/merge regime crossover.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.labeled_graph import LabeledGraph
from repro.kernels import (
    GALLOP_RATIO,
    KERNEL_KINDS,
    bitset_and_members,
    bitset_members,
    bitset_of,
    intersect_sorted,
    joinable_kernel,
)

ids = st.lists(st.integers(min_value=0, max_value=2_000), unique=True, max_size=200)


@given(ids, ids)
def test_intersect_sorted_matches_set_intersection(a, b):
    a, b = sorted(a), sorted(b)
    assert intersect_sorted(a, b) == sorted(set(a) & set(b))


@given(ids, ids)
def test_intersect_sorted_is_symmetric(a, b):
    a, b = sorted(a), sorted(b)
    assert intersect_sorted(a, b) == intersect_sorted(b, a)


@given(st.lists(st.integers(0, 50), unique=True, max_size=5), st.data())
def test_galloping_regime_matches(a, data):
    # Force the galloping branch: |b| >= GALLOP_RATIO * |a| and |a| small.
    a = sorted(a)
    needed = max(GALLOP_RATIO * max(len(a), 1), 1)
    b = sorted(
        data.draw(
            st.lists(
                st.integers(0, 10_000), unique=True, min_size=needed, max_size=needed + 40
            )
        )
    )
    assert len(b) >= GALLOP_RATIO * max(len(a), 1)
    assert intersect_sorted(a, b) == sorted(set(a) & set(b))


def test_intersect_sorted_empty_sides():
    assert intersect_sorted([], [1, 2]) == []
    assert intersect_sorted((1, 2), ()) == []
    assert intersect_sorted([], []) == []


@given(ids)
def test_bitset_roundtrip(vertices):
    mask = bitset_of(vertices)
    assert bitset_members(mask) == sorted(vertices)


@given(st.lists(ids, min_size=1, max_size=4))
def test_bitset_and_members_matches_set_intersection(sets):
    expected = set(sets[0])
    for s in sets[1:]:
        expected &= set(s)
    masks = [bitset_of(s) for s in sets]
    assert bitset_and_members(*masks) == sorted(expected)


def test_bitset_and_members_empty_is_identity():
    # AND over zero masks is the all-ones identity; members of -1 would be
    # infinite, so callers always AND at least one finite mask in.
    assert joinable_kernel([]) == -1
    assert bitset_and_members() == []


@given(st.lists(st.integers(0, 300), unique=True, min_size=1, max_size=6))
def test_joinable_kernel_folds_and(members):
    masks = [bitset_of([m]) | bitset_of(members) for m in members]
    folded = joinable_kernel(masks)
    expected = -1
    for m in masks:
        expected &= m
    assert folded == expected


def _random_graph(rng: random.Random, n: int = 60, p: float = 0.15) -> LabeledGraph:
    labels = [f"L{rng.randrange(3)}" for _ in range(n)]
    edges = [(u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < p]
    return LabeledGraph(labels, edges)


@pytest.mark.parametrize("seed", range(8))
def test_mask_and_matches_scalar_joinable_loop(seed):
    """The engine invariant: one mask AND + bit probe == per-neighbor has_edge.

    For a random graph and a random set of "matched neighbor vertices" S
    (a partial assignment's image), the folded adjacency mask must answer
    exactly like the scalar loop for every probe vertex v.
    """
    rng = random.Random(seed)
    graph = _random_graph(rng)
    cache = graph.index_cache()
    size = rng.randrange(1, 5)
    matched = rng.sample(range(graph.num_vertices), size)
    mask = joinable_kernel(cache.adjacency_mask(w) for w in matched)
    for v in range(graph.num_vertices):
        scalar = all(graph.has_edge(v, w) for w in matched)
        assert bool((mask >> v) & 1) == scalar


@pytest.mark.parametrize("seed", range(4))
def test_adjacency_mask_matches_adjacency_slice(seed):
    rng = random.Random(100 + seed)
    graph = _random_graph(rng, n=40, p=0.2)
    cache = graph.index_cache()
    for v in range(graph.num_vertices):
        assert bitset_members(cache.adjacency_mask(v)) == list(cache.adjacency_slice(v))


def test_kernel_kinds_are_distinct():
    assert len(set(KERNEL_KINDS)) == len(KERNEL_KINDS) == 5
