"""Shared fixtures for the service tests: one warm in-process server."""

from __future__ import annotations

import pytest

from repro.core.config import DSQLConfig
from repro.datasets.registry import make_dataset
from repro.queries.generator import query_set
from repro.service import GraphCatalog, QueryService, ServiceClient, ServiceServer

DATASET = "yeast"
SCALE = 0.1
SEED = 0
DEFAULT_K = 5


def tiny_graph():
    """The deterministic graph the module server pins (rebuildable at will)."""
    return make_dataset(DATASET, scale=SCALE, seed=SEED)


def tiny_queries(count: int = 4, edges: int = 3, seed: int = 1):
    return list(query_set(tiny_graph(), edges, count, seed=seed))


@pytest.fixture(scope="module")
def server():
    """A running in-process server with one warm graph named ``tiny``."""
    catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
    catalog.add_graph("tiny", tiny_graph(), source="fixture")
    service = QueryService(catalog, max_in_flight=4, max_queue=8)
    srv = ServiceServer(service, port=0).start()
    yield srv
    srv.close()


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url, timeout=30.0)
