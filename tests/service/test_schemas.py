"""Wire-format tests: strict parsing, typed errors, response envelopes."""

from __future__ import annotations

import json

import pytest

from repro.core.result import DSQResult
from repro.core.state import SearchStats
from repro.graph.query_graph import QueryGraph
from repro.service import (
    BATCH_STRATEGIES,
    ServiceError,
    parse_batch_request,
    parse_json_body,
    parse_query_request,
    query_graph_from_json,
    query_graph_to_json,
    result_to_json,
)

TRIANGLE = {"labels": ["A", "B", "C"], "edges": [[0, 1], [1, 2], [2, 0]]}


def _query_payload(**overrides):
    payload = {"graph": "tiny", "query": dict(TRIANGLE)}
    payload.update(overrides)
    return payload


def _batch_payload(**overrides):
    payload = {"graph": "tiny", "queries": [dict(TRIANGLE)]}
    payload.update(overrides)
    return payload


class TestParseJsonBody:
    def test_valid_object(self):
        assert parse_json_body(b'{"graph": "g"}') == {"graph": "g"}

    def test_invalid_json_is_400(self):
        with pytest.raises(ServiceError) as info:
            parse_json_body(b"{nope")
        assert (info.value.status, info.value.code) == (400, "invalid_json")

    def test_non_object_is_400(self):
        with pytest.raises(ServiceError) as info:
            parse_json_body(b"[1, 2]")
        assert info.value.code == "invalid_json"

    def test_oversized_body_is_413(self):
        from repro.service.schemas import MAX_BODY_BYTES

        with pytest.raises(ServiceError) as info:
            parse_json_body(b"x" * (MAX_BODY_BYTES + 1))
        assert (info.value.status, info.value.code) == (413, "request_too_large")


class TestQueryGraphCodec:
    def test_round_trip_normalizes_edges(self):
        query = query_graph_from_json(TRIANGLE)
        assert list(query.labels) == ["A", "B", "C"]
        # Undirected edges come back canonical: u < v, sorted.
        assert query_graph_to_json(query) == {
            "labels": ["A", "B", "C"],
            "edges": [[0, 1], [0, 2], [1, 2]],
        }

    def test_canonical_form_is_a_fixed_point(self):
        once = query_graph_to_json(query_graph_from_json(TRIANGLE))
        twice = query_graph_to_json(query_graph_from_json(once))
        assert once == twice

    def test_name_survives(self):
        query = query_graph_from_json({**TRIANGLE, "name": "tri"})
        assert query.name == "tri"

    def test_unknown_key_rejected(self):
        with pytest.raises(ServiceError) as info:
            query_graph_from_json({**TRIANGLE, "weights": [1.0]})
        assert info.value.code == "unknown_field"

    def test_disconnected_query_is_invalid_query(self):
        with pytest.raises(ServiceError) as info:
            query_graph_from_json({"labels": ["A", "B"], "edges": []})
        assert (info.value.status, info.value.code) == (400, "invalid_query")

    def test_disconnected_query_reports_component(self):
        # The typed InvalidQueryError carries the offending component; its
        # message — component included — survives into the 400 body.
        payload = {"labels": ["A", "B", "C", "D"], "edges": [[0, 1], [0, 2]]}
        with pytest.raises(ServiceError) as info:
            query_graph_from_json(payload)
        assert (info.value.status, info.value.code) == (400, "invalid_query")
        assert "connected" in info.value.message
        assert "[3]" in info.value.message

    @pytest.mark.parametrize(
        "bad",
        [
            "not an object",
            {"edges": [[0, 1]]},
            {"labels": [], "edges": []},
            {"labels": ["A", "B"], "edges": [[0]]},
            {"labels": ["A", "B"], "edges": [[0, True]]},
            {"labels": ["A", "B"], "edges": "0-1"},
            {"labels": ["A", "B"], "edges": [[0, 1]], "name": 3},
        ],
    )
    def test_malformed_shapes(self, bad):
        with pytest.raises(ServiceError) as info:
            query_graph_from_json(bad)
        assert info.value.status == 400


class TestParseQueryRequest:
    def test_minimal(self):
        req = parse_query_request(_query_payload())
        assert req.graph == "tiny"
        assert isinstance(req.query, QueryGraph)
        assert (req.k, req.alpha, req.time_budget_ms) == (None, None, None)

    def test_overrides(self):
        req = parse_query_request(
            _query_payload(k=3, alpha=0.5, time_budget_ms=250)
        )
        assert (req.k, req.alpha, req.time_budget_ms) == (3, 0.5, 250.0)

    def test_objective_override(self):
        req = parse_query_request(_query_payload(objective="edge"))
        assert req.objective == "edge"

    def test_objective_defaults_to_none(self):
        assert parse_query_request(_query_payload()).objective is None

    @pytest.mark.parametrize("bad", ["treewidth", 7, ""])
    def test_unknown_objective_is_typed_400(self, bad):
        with pytest.raises(ServiceError) as info:
            parse_query_request(_query_payload(objective=bad))
        assert (info.value.status, info.value.code) == (400, "invalid_objective")
        # The message names the valid set so clients can self-correct.
        assert "edge" in info.value.message and "vertex" in info.value.message

    def test_unknown_field_names_the_typo(self):
        with pytest.raises(ServiceError) as info:
            parse_query_request(_query_payload(tiem_budget_ms=10))
        assert info.value.code == "unknown_field"
        assert "tiem_budget_ms" in info.value.message

    @pytest.mark.parametrize(
        "overrides",
        [
            {"graph": ""},
            {"graph": 7},
            {"k": 0},
            {"k": True},
            {"k": "3"},
            {"alpha": "0.5"},
            {"time_budget_ms": 0},
            {"time_budget_ms": -5},
        ],
    )
    def test_bad_fields(self, overrides):
        with pytest.raises(ServiceError) as info:
            parse_query_request(_query_payload(**overrides))
        assert (info.value.status, info.value.code) == (400, "invalid_request")


class TestParseBatchRequest:
    def test_defaults(self):
        req = parse_batch_request(_batch_payload())
        assert req.strategy == "serial"
        assert req.jobs is None
        assert len(req.queries) == 1

    def test_thread_strategy_allowed(self):
        req = parse_batch_request(_batch_payload(strategy="thread", jobs=2))
        assert (req.strategy, req.jobs) == ("thread", 2)

    def test_process_strategy_refused(self):
        assert "process" not in BATCH_STRATEGIES
        with pytest.raises(ServiceError) as info:
            parse_batch_request(_batch_payload(strategy="process"))
        assert info.value.code == "invalid_request"
        assert "process" in info.value.message

    def test_empty_queries_rejected(self):
        with pytest.raises(ServiceError):
            parse_batch_request(_batch_payload(queries=[]))

    def test_oversized_batch_rejected(self):
        from repro.service.schemas import MAX_BATCH_QUERIES

        payload = _batch_payload(queries=[dict(TRIANGLE)] * (MAX_BATCH_QUERIES + 1))
        with pytest.raises(ServiceError) as info:
            parse_batch_request(payload)
        assert info.value.code == "invalid_request"

    def test_objective_override(self):
        req = parse_batch_request(_batch_payload(objective="weighted-vertex"))
        assert req.objective == "weighted-vertex"

    def test_unknown_objective_is_typed_400(self):
        with pytest.raises(ServiceError) as info:
            parse_batch_request(_batch_payload(objective="treewidth"))
        assert (info.value.status, info.value.code) == (400, "invalid_objective")

    def test_bad_query_position_is_reported(self):
        payload = _batch_payload(queries=[dict(TRIANGLE), {"labels": []}])
        with pytest.raises(ServiceError) as info:
            parse_batch_request(payload)
        assert "queries[1]" in info.value.message


class TestErrorBody:
    def test_plain_error(self):
        err = ServiceError(404, "unknown_graph", "no such graph")
        assert err.to_body() == {
            "error": {"code": "unknown_graph", "message": "no such graph"}
        }

    def test_retry_after_included(self):
        err = ServiceError(429, "overloaded", "busy", retry_after_s=1.5)
        assert err.to_body()["error"]["retry_after_s"] == 1.5


class TestResultEnvelope:
    def _result(self, deadline=False):
        stats = SearchStats()
        stats.deadline_exhausted = deadline
        return DSQResult(
            embeddings=[(1, 2, 3)], k=2, q=3, coverage=3, level=0, stats=stats
        )

    def test_envelope_fields(self):
        body = result_to_json(self._result(), graph="tiny", elapsed_ms=1.25)
        assert body["graph"] == "tiny"
        assert body["elapsed_ms"] == 1.25
        assert body["deadline_exhausted"] is False
        assert body["embeddings"] == [[1, 2, 3]]
        json.dumps(body)  # the envelope must be JSON-serializable as-is

    def test_deadline_flag_lifted_to_top_level(self):
        body = result_to_json(self._result(deadline=True), graph="tiny")
        assert body["deadline_exhausted"] is True
        assert body["stats"]["deadline_exhausted"] is True
        assert "elapsed_ms" not in body


class TestUseCompressionField:
    def test_defaults_to_none_on_both_requests(self):
        assert parse_query_request(_query_payload()).use_compression is None
        assert parse_batch_request(_batch_payload()).use_compression is None

    @pytest.mark.parametrize("value", [True, False])
    def test_round_trips_on_both_requests(self, value):
        assert (
            parse_query_request(_query_payload(use_compression=value)).use_compression
            is value
        )
        assert (
            parse_batch_request(_batch_payload(use_compression=value)).use_compression
            is value
        )

    def test_explicit_null_means_absent(self):
        assert (
            parse_query_request(_query_payload(use_compression=None)).use_compression
            is None
        )

    @pytest.mark.parametrize("bad", ["true", 1, 0])
    def test_non_bool_is_typed_400(self, bad):
        with pytest.raises(ServiceError) as info:
            parse_query_request(_query_payload(use_compression=bad))
        assert (info.value.status, info.value.code) == (400, "invalid_request")
        assert "use_compression" in info.value.message
