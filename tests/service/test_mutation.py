"""The service write surface: per-graph mutation endpoints and locking.

Covers the wire contract (``POST /v1/graphs/{g}/edges`` and
``/v1/graphs/{g}/ingest``), the typed failure modes (400
``invalid_mutation``, 404, 409 ``graph_compacting``, 501
``mutation_unsupported``), and the concurrency keystone: queries racing a
mutation always see either the full pre-mutation graph or the full
post-mutation graph — bit-identical to a rebuilt reference — never a
half-applied one.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.datasets.registry import make_dataset
from repro.graph.labeled_graph import LabeledGraph
from repro.queries.generator import query_set
from repro.service import (
    GraphCatalog,
    QueryService,
    ServiceClient,
    ServiceError,
    ServiceServer,
)
from repro.service.client import ServiceClientError

from .conftest import DEFAULT_K, tiny_graph


def _absent_pair(graph):
    u = 0
    v = next(x for x in range(1, graph.num_vertices) if not graph.has_edge(u, x))
    return u, v


@pytest.fixture()
def mutable_server():
    """A per-test server (mutations would leak across module-scoped tests)."""
    catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
    graph = tiny_graph()
    catalog.add_graph("tiny", graph, source="fixture")
    srv = ServiceServer(QueryService(catalog), port=0).start()
    try:
        yield srv, ServiceClient(srv.url, timeout=30.0), graph
    finally:
        srv.close()


class TestEdgeEndpoint:
    def test_add_then_remove_round_trip(self, mutable_server):
        _, client, graph = mutable_server
        u, v = _absent_pair(graph)
        body = client.mutate_edge("tiny", "add", u, v)
        assert body["applied"] == 1 and body["compacted"] is False
        assert body["version"][1] == 1
        assert graph.has_edge(u, v)
        assert client.mutate_edge("tiny", "add", u, v)["applied"] == 0  # no-op
        body = client.mutate_edge("tiny", "remove", u, v)
        assert body["applied"] == 1 and not graph.has_edge(u, v)

    def test_invalid_edge_bodies(self, mutable_server):
        _, client, _ = mutable_server
        for payload in (
            {"op": "upsert", "u": 0, "v": 1},
            {"op": "add", "u": -1, "v": 1},
            {"op": "add", "u": 0, "v": True},
            {"op": "add", "u": 0, "v": 1, "extra": 1},
            {"op": "add", "u": 0, "v": 10**9},
        ):
            with pytest.raises(ServiceClientError) as exc:
                client._call("POST", "/v1/graphs/tiny/edges", payload)
            assert exc.value.status == 400

    def test_unknown_graph_and_endpoint(self, mutable_server):
        _, client, _ = mutable_server
        with pytest.raises(ServiceClientError) as exc:
            client.mutate_edge("nope", "add", 0, 1)
        assert exc.value.status == 404 and exc.value.code == "unknown_graph"
        with pytest.raises(ServiceClientError) as exc:
            client._call("POST", "/v1/graphs/tiny/frobnicate", {})
        assert exc.value.status == 404 and exc.value.code == "unknown_endpoint"


class TestIngestEndpoint:
    def test_batch_is_one_write(self, mutable_server):
        _, client, graph = mutable_server
        n = graph.num_vertices
        body = client.ingest(
            "tiny",
            [["add_vertex", "Z9"], ["add_edge", n, 0], ["remove_edge", n, 0]],
        )
        assert body["applied"] == 3
        assert graph.num_vertices == n + 1
        assert graph.label(n) == "Z9" and graph.degree(n) == 0

    def test_compaction_threshold_override(self, mutable_server):
        _, client, graph = mutable_server
        u, v = _absent_pair(graph)
        body = client.ingest(
            "tiny", [["add_edge", u, v]], compaction_threshold=1
        )
        assert body["compacted"] is True
        assert body["version"][1] == 0  # fresh epoch starts at delta_seq 0
        assert graph.backend.delta_size == 0

    def test_invalid_batch_is_atomic(self, mutable_server):
        _, client, graph = mutable_server
        edges_before = graph.num_edges
        u, v = _absent_pair(graph)
        with pytest.raises(ServiceClientError) as exc:
            client.ingest("tiny", [["add_edge", u, v], ["add_edge", 0, 10**9]])
        assert exc.value.status == 400 and exc.value.code == "invalid_mutation"
        assert graph.num_edges == edges_before and not graph.has_edge(u, v)

    def test_malformed_ops_reject(self, mutable_server):
        _, client, _ = mutable_server
        for ops in ([], [["noop"]], [["add_vertex", 3]], [["add_edge", 0]], "nope"):
            with pytest.raises(ServiceClientError) as exc:
                client._call("POST", "/v1/graphs/tiny/ingest", {"ops": ops})
            assert exc.value.status == 400


class TestWriteLock:
    def test_draining_timeout_is_409(self):
        catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
        entry = catalog.add_graph("tiny", tiny_graph(), source="fixture")
        entry._rw.acquire_read()  # a reader pinned mid-query
        try:
            with pytest.raises(ServiceError) as exc:
                entry.mutate([("add_edge", 0, 1)], write_timeout_s=0.05)
            assert exc.value.status == 409
            assert exc.value.code == "graph_compacting"
            assert exc.value.retry_after_s is not None
        finally:
            entry._rw.release_read()
        # Reader gone: the same mutation goes through.
        summary = entry.mutate([("add_edge", *_absent_pair(entry.graph))])
        assert summary.applied == 1

    def test_read_only_service_answers_501(self):
        catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
        catalog.add_graph("tiny", tiny_graph(), source="fixture")
        service = QueryService(catalog, allow_mutations=False)
        status, body, _ = service.handle_post(
            "/v1/graphs/tiny/edges", lambda: {"op": "add", "u": 0, "v": 1}
        )
        assert status == 501
        assert body["error"]["code"] == "mutation_unsupported"


class TestConcurrentReadersWriter:
    def test_queries_race_mutation_bit_identically(self, mutable_server):
        """Every answer equals the pre- or post-mutation reference exactly."""
        _, client, graph = mutable_server
        queries = list(query_set(graph, 3, 2, seed=21))
        config = DSQLConfig(k=DEFAULT_K)

        def reference_answers(g):
            session = DSQL(
                LabeledGraph(list(g.labels), list(g.edges()), backend="csr"),
                config=config,
            )
            return {
                i: session.query(q).to_dict()["embeddings"]
                for i, q in enumerate(queries)
            }

        before = reference_answers(graph)
        u, v = _absent_pair(graph)
        observations = []
        errors = []
        done = threading.Event()

        def reader(tid):
            try:
                while not done.is_set():
                    for i, q in enumerate(queries):
                        observations.append((i, client.query("tiny", q)["embeddings"]))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append((tid, repr(exc)))

        threads = [threading.Thread(target=reader, args=(t,)) for t in range(3)]
        for t in threads:
            t.start()
        try:
            time.sleep(0.1)
            body = client.ingest("tiny", [["add_edge", u, v], ["add_vertex", "Z9"]])
            assert body["applied"] == 2
            time.sleep(0.2)
        finally:
            done.set()
            for t in threads:
                t.join()
        after = reference_answers(graph)
        assert not errors, errors
        assert observations
        bad = [
            (i, got)
            for i, got in observations
            if got != before[i] and got != after[i]
        ]
        assert not bad, bad[:3]
