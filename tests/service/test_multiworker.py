"""Tests for :mod:`repro.service.multiworker` — the pre-forked worker front.

Covers the full story on one machine: N workers attach the parent's
published graph segments, answer correctly (bit-identical to a serial
session) through the kernel-balanced shared port, and the parent's control
server presents coherent merged /healthz and /metrics views. Skipped on
platforms without SO_REUSEPORT or the fork start method.
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import urllib.error
import urllib.request

import pytest

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.exceptions import ConfigError
from repro.service import GraphCatalog, MultiWorkerServer, ServiceClient
from tests.service.conftest import DEFAULT_K, tiny_graph, tiny_queries

WORKERS = 2


def _platform_supported() -> bool:
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform-dependent
        return False
    return True


pytestmark = pytest.mark.skipif(
    not _platform_supported(),
    reason="multiworker front requires SO_REUSEPORT and the fork start method",
)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return json.loads(response.read().decode("utf-8"))


@pytest.fixture(scope="module")
def front():
    catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
    catalog.add_graph("tiny", tiny_graph(), source="fixture")
    server = MultiWorkerServer(catalog, workers=WORKERS).start()
    yield server
    server.close()


@pytest.fixture(scope="module")
def client(front):
    return ServiceClient(front.url, timeout=30.0)


class TestAnswers:
    def test_point_queries_match_serial(self, client):
        queries = tiny_queries(count=4)
        session = DSQL(tiny_graph(), config=DSQLConfig(k=DEFAULT_K))
        for query in queries:
            body = client.query("tiny", query)
            reference = session.query(query)
            assert body["embeddings"] == [list(e) for e in reference.embeddings]
            assert body["coverage"] == reference.coverage

    def test_batch_matches_serial_query_many(self, client):
        queries = tiny_queries(count=5, seed=3)
        reference = DSQL(tiny_graph(), config=DSQLConfig(k=DEFAULT_K)).query_many(queries)
        body = client.batch("tiny", queries, strategy="serial")
        assert body["count"] == len(queries)
        got = [r["embeddings"] for r in body["results"]]
        assert got == [[list(e) for e in r.embeddings] for r in reference]

    def test_every_worker_answers_on_the_shared_port(self, front):
        # Hit each worker's private admin address to prove both processes
        # are serving the same graph; the shared port reaches *a* worker
        # (kernel's pick), the admin servers reach each one determinately.
        for info in front.worker_info:
            body = _get(f"{info['admin_url']}/healthz")
            assert body["status"] == "ok"
            assert body["graphs"] == ["tiny"]
            assert body["identity"]["pid"] == info["pid"]


class TestMergedViews:
    def test_merged_healthz_lists_all_workers(self, front, client):
        client.healthz()  # at least one request through the shared port
        body = _get(f"{front.control_url}/healthz")
        assert body["status"] == "ok"
        assert body["workers"] == WORKERS
        assert body["healthy_workers"] == WORKERS
        pids = {w["identity"]["pid"] for w in body["per_worker"]}
        assert pids == {info["pid"] for info in front.worker_info}

    def test_merged_metrics_sum_across_workers(self, front, client):
        queries = tiny_queries(count=3, seed=5)
        for query in queries:
            client.query("tiny", query)
        body = _get(f"{front.control_url}/metrics")
        assert body["workers"] == WORKERS
        assert len(body["per_worker"]) == WORKERS
        # Each worker counts its own requests; the merged view must hold
        # at least the queries just sent (plus health/metrics traffic).
        assert body["metrics"].get("service.requests", 0) >= len(queries)
        assert body["shared_bytes"] > 0

    def test_control_unknown_endpoint_is_404(self, front):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{front.control_url}/nope")
        assert excinfo.value.code == 404


class TestValidation:
    def test_rejects_zero_workers(self):
        catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
        with pytest.raises(ConfigError, match="workers"):
            MultiWorkerServer(catalog, workers=0)


@pytest.mark.slow
class TestLifecycle:
    def test_close_drains_workers_and_frees_segments(self):
        catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
        catalog.add_graph("tiny", tiny_graph(), source="fixture")
        server = MultiWorkerServer(catalog, workers=WORKERS).start()
        client = ServiceClient(server.url, timeout=30.0)
        query = tiny_queries(count=1)[0]
        assert client.query("tiny", query)["graph"] == "tiny"
        processes = list(server._processes)
        server.close()
        assert all(not process.is_alive() for process in processes)
        server.close()  # idempotent
