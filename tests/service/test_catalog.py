"""Catalog tests: loading specs, warm sessions, and memo-correct answering."""

from __future__ import annotations

import pytest

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.exceptions import ConfigError, DatasetError
from repro.graph.io import dump_edge_list, dump_json
from repro.service import GraphCatalog, ServiceError, build_catalog
from repro.service.catalog import CatalogEntry
from tests.service.conftest import DEFAULT_K, tiny_graph, tiny_queries


@pytest.fixture(scope="module")
def entry():
    catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
    return catalog.add_graph("tiny", tiny_graph())


class TestCatalogPopulation:
    def test_add_graph_and_lookup(self):
        catalog = GraphCatalog()
        catalog.add_graph("g", tiny_graph())
        assert "g" in catalog
        assert len(catalog) == 1
        assert catalog.get("g").name == "g"

    def test_unknown_graph_is_404(self):
        catalog = GraphCatalog()
        catalog.add_graph("g", tiny_graph())
        with pytest.raises(ServiceError) as info:
            catalog.get("nope")
        assert (info.value.status, info.value.code) == (404, "unknown_graph")
        assert "'g'" in info.value.message  # the body names what *is* loaded

    def test_duplicate_and_empty_names_refused(self):
        catalog = GraphCatalog()
        catalog.add_graph("g", tiny_graph())
        with pytest.raises(ConfigError):
            catalog.add_graph("g", tiny_graph())
        with pytest.raises(ConfigError):
            catalog.add_graph("", tiny_graph())

    def test_add_dataset_with_scale(self):
        catalog = GraphCatalog(seed=0)
        entry = catalog.add_dataset("yeast@0.1")
        assert entry.source == "dataset:yeast@0.1"
        reference = tiny_graph()
        assert entry.graph.num_vertices == reference.num_vertices
        assert entry.graph.num_edges == reference.num_edges

    def test_bad_dataset_scale(self):
        with pytest.raises(DatasetError):
            GraphCatalog().add_dataset("yeast@huge")

    def test_add_file_both_formats(self, tmp_path):
        graph = tiny_graph()
        edge_path = tmp_path / "g.txt"
        json_path = tmp_path / "g.json"
        dump_edge_list(graph, edge_path)
        dump_json(graph, json_path)
        catalog = GraphCatalog()
        from_edges = catalog.add_file(f"edges={edge_path}")
        from_json = catalog.add_file(f"json={json_path}")
        for entry in (from_edges, from_json):
            assert entry.graph.num_vertices == graph.num_vertices
            assert entry.graph.num_edges == graph.num_edges

    @pytest.mark.parametrize("spec", ["nopath", "=path", "name=", "name=/no/such/file"])
    def test_bad_file_specs(self, spec):
        with pytest.raises(DatasetError):
            GraphCatalog().add_file(spec)

    def test_build_catalog_reports_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        dump_edge_list(tiny_graph(), path)
        catalog, lines = build_catalog(
            datasets=["yeast@0.1"], graph_files=[f"extra={path}"]
        )
        assert catalog.names() == ["extra", "yeast"]
        assert len(lines) == 2
        assert all("|V|=" in line for line in lines)


class TestSessions:
    def test_default_session_pinned(self, entry):
        assert entry.session() is entry.default_session
        assert entry.session(entry.default_config) is entry.default_session

    def test_override_sessions_cached(self, entry):
        config = entry.request_config(k=3)
        assert entry.session(config) is entry.session(config)
        assert entry.session(config) is not entry.default_session

    def test_session_lru_never_evicts_default(self):
        catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
        small = CatalogEntry(
            "tiny", tiny_graph(), catalog.default_config, max_sessions=2
        )
        for k in (2, 3, 4):  # one more distinct config than the LRU holds
            small.session(small.request_config(k=k))
        assert small.describe()["sessions"] == 1 + 2
        assert small.session() is small.default_session

    def test_request_config_overrides(self, entry):
        config = entry.request_config(k=3, alpha=0.25, time_budget_ms=500)
        assert (config.k, config.alpha, config.time_budget_ms) == (3, 0.25, 500)
        assert entry.request_config() is entry.default_config

    def test_bad_override_is_400_invalid_config(self, entry):
        with pytest.raises(ServiceError) as info:
            entry.request_config(alpha=-1.0)
        assert (info.value.status, info.value.code) == (400, "invalid_config")


class TestAnswering:
    def test_answers_match_direct_session(self, entry):
        queries = tiny_queries(count=3)
        reference = DSQL(tiny_graph(), config=entry.default_config)
        for query in queries:
            got = entry.answer(query)
            want = reference.query(query)
            assert got.embeddings == want.embeddings
            assert got.coverage == want.coverage

    def test_repeat_answer_is_memo_hit(self, entry):
        query = tiny_queries(count=1, seed=7)[0]
        first = entry.answer(query)
        second = entry.answer(query)
        assert not first.from_cache
        assert second.from_cache
        assert second.embeddings == first.embeddings

    def test_override_config_does_not_share_memo(self, entry):
        query = tiny_queries(count=1, seed=8)[0]
        entry.answer(query)  # populate the default-config memo
        other = entry.answer(query, entry.request_config(k=2))
        assert not other.from_cache  # distinct session, distinct memo
        assert other.k == 2

    def test_answer_batch_matches_query_many(self, entry):
        queries = tiny_queries(count=4, seed=9)
        results, report = entry.answer_batch(queries, strategy="thread", jobs=2)
        reference = DSQL(tiny_graph(), config=entry.default_config)
        expected = reference.query_many(queries)
        assert [r.embeddings for r in results] == [r.embeddings for r in expected]
        assert report.strategy == "thread"
        assert report.batch == len(queries)


class TestExecutorLeases:
    """Evicting an executor another thread already fetched must defer its
    close to that thread's lease release, never close it mid-flight."""

    @staticmethod
    def _fresh_entry(max_executors=1):
        catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
        entry = catalog.add_graph("tiny", tiny_graph())
        entry._max_executors = max_executors
        return entry

    @staticmethod
    def _record_closes(executor):
        closes = []
        original = executor.close

        def recording_close():
            closes.append(True)
            original()

        executor.close = recording_close
        return closes

    def test_eviction_defers_close_while_leased(self):
        entry = self._fresh_entry(max_executors=1)
        session = entry.session()
        leased = entry._acquire_executor(session, "serial", 1)
        closes = self._record_closes(leased)
        # A different request shape overflows the size-1 LRU and evicts
        # the leased executor — which must survive until its release.
        other = entry._acquire_executor(session, "serial", 2)
        assert leased not in entry._executors.values()
        assert not closes
        entry._release_executor(leased)
        assert closes == [True]
        entry._release_executor(other)
        entry.close()

    def test_entry_close_defers_leased_executor(self):
        entry = self._fresh_entry()
        leased = entry._acquire_executor(entry.session(), "serial", 1)
        closes = self._record_closes(leased)
        entry.close()
        assert not closes  # batch still in flight
        entry._release_executor(leased)
        assert closes == [True]

    def test_unleased_eviction_closes_immediately(self):
        entry = self._fresh_entry(max_executors=1)
        session = entry.session()
        first = entry._acquire_executor(session, "serial", 1)
        entry._release_executor(first)
        closes = self._record_closes(first)
        second = entry._acquire_executor(session, "serial", 2)
        assert closes == [True]
        entry._release_executor(second)
        entry.close()

    def test_concurrent_batches_across_eviction_pressure(self):
        import threading

        entry = self._fresh_entry(max_executors=1)
        queries = tiny_queries(count=3, seed=11)
        expected = [
            r.embeddings
            for r in DSQL(tiny_graph(), config=entry.default_config).query_many(queries)
        ]
        errors = []

        def run_shape(jobs):
            try:
                for _ in range(5):
                    results, _ = entry.answer_batch(
                        queries, strategy="serial", jobs=jobs
                    )
                    assert [r.embeddings for r in results] == expected
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=run_shape, args=(jobs,)) for jobs in (1, 2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert not entry._executor_leases
        entry.close()


class TestPlanCachePersistence:
    """serve --plan-cache-file: specs out on drain, eager recompile at boot."""

    @staticmethod
    def _warm_catalog():
        catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
        entry = catalog.add_graph("tiny", tiny_graph())
        for query in tiny_queries(count=3, seed=21):
            entry.answer(query)
        return catalog, entry

    def test_save_and_load_round_trip(self, tmp_path):
        catalog, entry = self._warm_catalog()
        path = tmp_path / "plans.json"
        saved = catalog.save_plan_cache(path)
        assert saved == entry.index_cache.plan_cache.info()["size"] > 0

        cold = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
        cold_entry = cold.add_graph("tiny", tiny_graph())
        warmed = cold.load_plan_cache(path)
        assert warmed == saved
        # Every request that compiled before boot is now a plan-cache hit.
        pc = cold_entry.index_cache.plan_cache
        hits = pc.info()["hits"]
        for query in tiny_queries(count=3, seed=21):
            cold_entry.answer(query)
        assert pc.info()["hits"] > hits
        assert pc.info()["misses"] == pc.info()["size"]  # only the warm pass compiled

    def test_save_file_is_json_with_graph_table(self, tmp_path):
        import json

        catalog, _ = self._warm_catalog()
        path = tmp_path / "plans.json"
        catalog.save_plan_cache(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert set(payload["graphs"]) == {"tiny"}
        for spec in payload["graphs"]["tiny"]:
            assert {"labels", "edges", "use_compression"} <= set(spec)

    def test_missing_and_corrupt_files_warm_zero(self, tmp_path):
        catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
        catalog.add_graph("tiny", tiny_graph())
        assert catalog.load_plan_cache(tmp_path / "absent.json") == 0
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert catalog.load_plan_cache(bad) == 0
        bad.write_text('{"graphs": []}', encoding="utf-8")
        assert catalog.load_plan_cache(bad) == 0

    def test_unknown_graphs_in_file_are_skipped(self, tmp_path):
        catalog, _ = self._warm_catalog()
        path = tmp_path / "plans.json"
        saved = catalog.save_plan_cache(path)

        other = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
        other.add_graph("tiny", tiny_graph())
        other.add_graph("unrelated", tiny_graph())
        assert other.load_plan_cache(path) == saved

        renamed = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
        renamed.add_graph("different-name", tiny_graph())
        assert renamed.load_plan_cache(path) == 0
