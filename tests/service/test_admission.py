"""Unit tests for the bounded admission controller."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ConfigError
from repro.observability import MetricsRegistry
from repro.service import AdmissionController


class TestAcquireRelease:
    def test_admits_up_to_capacity(self):
        ctl = AdmissionController(max_in_flight=2, max_queue=0)
        assert ctl.acquire() and ctl.acquire()
        assert ctl.in_flight == 2

    def test_rejects_beyond_capacity_with_empty_queue(self):
        ctl = AdmissionController(max_in_flight=1, max_queue=0)
        assert ctl.acquire()
        assert not ctl.acquire()
        assert ctl.rejected == 1

    def test_release_reopens_slot(self):
        ctl = AdmissionController(max_in_flight=1, max_queue=0)
        assert ctl.acquire()
        ctl.release()
        assert ctl.acquire()

    def test_release_without_acquire_raises(self):
        ctl = AdmissionController(max_in_flight=1, max_queue=0)
        with pytest.raises(RuntimeError):
            ctl.release()

    def test_bad_limits_rejected(self):
        with pytest.raises(ConfigError):
            AdmissionController(max_in_flight=0, max_queue=0)
        with pytest.raises(ConfigError):
            AdmissionController(max_in_flight=1, max_queue=-1)


class TestQueueing:
    def test_waiter_admitted_after_release(self):
        ctl = AdmissionController(max_in_flight=1, max_queue=1)
        assert ctl.acquire()
        admitted = threading.Event()

        def waiter():
            assert ctl.acquire()
            admitted.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        # The waiter must be queued, not rejected.
        for _ in range(1000):
            if ctl.waiting == 1:
                break
            threading.Event().wait(0.001)
        assert ctl.waiting == 1
        assert not admitted.is_set()
        ctl.release()
        thread.join(timeout=5)
        assert admitted.is_set()
        assert ctl.in_flight == 1

    def test_full_queue_rejects_immediately(self):
        ctl = AdmissionController(max_in_flight=1, max_queue=1)
        assert ctl.acquire()
        blocker = threading.Thread(target=ctl.acquire, daemon=True)
        blocker.start()
        for _ in range(1000):
            if ctl.waiting == 1:
                break
            threading.Event().wait(0.001)
        # in_flight full, queue full -> third caller is turned away at once.
        assert not ctl.acquire()
        ctl.release()
        blocker.join(timeout=5)

    def test_wait_timeout_counts_as_rejection(self):
        ctl = AdmissionController(max_in_flight=1, max_queue=1)
        assert ctl.acquire()
        assert not ctl.acquire(timeout=0.01)
        assert ctl.rejected == 1
        assert ctl.waiting == 0


class TestIntrospection:
    def test_gauges_track_occupancy(self):
        registry = MetricsRegistry()
        ctl = AdmissionController(max_in_flight=2, max_queue=2, metrics=registry)
        ctl.acquire()
        assert registry.gauge("service.in_flight").value == 1
        ctl.release()
        assert registry.gauge("service.in_flight").value == 0
        assert registry.gauge("service.queue_depth").value == 0

    def test_describe_snapshot(self):
        ctl = AdmissionController(max_in_flight=3, max_queue=5)
        ctl.acquire()
        info = ctl.describe()
        assert info == {
            "mode": "count",
            "max_in_flight": 3,
            "max_queue": 5,
            "in_flight": 1,
            "queue_depth": 0,
            "rejected_total": 0,
        }
