"""Concurrency determinism: parallel clients == serial ``query_many``.

The service's core correctness promise under load: any interleaving of
concurrent requests produces, for every query, exactly the embeddings a
serial ``query_many`` stream would have produced — the memo lock plus the
deterministic search make thread scheduling unobservable in the results.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.service import ServiceClient
from tests.service.conftest import DEFAULT_K, tiny_graph, tiny_queries


def _serial_reference(queries):
    session = DSQL(tiny_graph(), config=DSQLConfig(k=DEFAULT_K))
    return {
        q.canonical_key(): r for q, r in zip(queries, session.query_many(queries))
    }


def _hammer(server, queries, threads):
    """Each thread sends every query; returns per-thread response lists."""
    responses = [None] * threads
    errors = []

    def worker(slot):
        client = ServiceClient(server.url, timeout=60.0)
        try:
            responses[slot] = [client.query("tiny", q) for q in queries]
        except Exception as exc:  # surfaced below; bare thread would hide it
            errors.append(exc)

    workers = [
        threading.Thread(target=worker, args=(slot,), daemon=True)
        for slot in range(threads)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=120)
    assert not errors, errors
    assert all(r is not None for r in responses)
    return responses


def _assert_matches_reference(responses, queries, reference):
    for thread_responses in responses:
        for query, body in zip(queries, thread_responses):
            want = reference[query.canonical_key()]
            assert body["embeddings"] == [list(e) for e in want.embeddings]
            assert body["coverage"] == want.coverage


class TestConcurrentDeterminism:
    def test_concurrent_clients_bit_identical_to_serial(self, server):
        queries = tiny_queries(count=4, seed=51)
        reference = _serial_reference(queries)
        responses = _hammer(server, queries, threads=8)
        _assert_matches_reference(responses, queries, reference)

    def test_mixed_point_and_batch_traffic(self, server):
        queries = tiny_queries(count=3, seed=52)
        reference = _serial_reference(queries)
        batch_bodies = []

        def batch_worker():
            client = ServiceClient(server.url, timeout=60.0)
            batch_bodies.append(client.batch("tiny", queries, strategy="thread"))

        batcher = threading.Thread(target=batch_worker, daemon=True)
        batcher.start()
        responses = _hammer(server, queries, threads=4)
        batcher.join(timeout=120)
        _assert_matches_reference(responses, queries, reference)
        assert len(batch_bodies) == 1
        for query, body in zip(queries, batch_bodies[0]["results"]):
            want = reference[query.canonical_key()]
            assert body["embeddings"] == [list(e) for e in want.embeddings]

    @pytest.mark.slow
    def test_sustained_concurrency(self, server):
        """Heavier soak: more threads, more distinct query structures."""
        queries = tiny_queries(count=12, edges=4, seed=53)
        reference = _serial_reference(queries)
        responses = _hammer(server, queries, threads=12)
        _assert_matches_reference(responses, queries, reference)
