"""End-to-end HTTP tests: correctness, ops endpoints, errors, and drain."""

from __future__ import annotations

import http.client
import signal
import threading
import time

import pytest

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.service import (
    GraphCatalog,
    QueryService,
    ServiceClient,
    ServiceClientError,
    ServiceServer,
)
from repro.service.schemas import query_graph_to_json
from tests.service.conftest import DEFAULT_K, tiny_graph, tiny_queries


def _reference_session() -> DSQL:
    return DSQL(tiny_graph(), config=DSQLConfig(k=DEFAULT_K))


class TestQueryEndpoint:
    def test_response_matches_direct_session(self, client):
        query = tiny_queries(count=1, seed=21)[0]
        body = client.query("tiny", query)
        want = _reference_session().query(query)
        assert body["embeddings"] == [list(e) for e in want.embeddings]
        assert body["coverage"] == want.coverage
        assert body["graph"] == "tiny"
        assert body["deadline_exhausted"] is False
        assert body["elapsed_ms"] >= 0

    def test_repeat_query_served_from_memo(self, client):
        query = tiny_queries(count=1, seed=22)[0]
        first = client.query("tiny", query)
        second = client.query("tiny", query)
        assert first["from_cache"] is False
        assert second["from_cache"] is True
        assert second["embeddings"] == first["embeddings"]

    def test_k_override(self, client):
        query = tiny_queries(count=1, seed=23)[0]
        body = client.query("tiny", query, k=2)
        assert body["k"] == 2
        assert len(body["embeddings"]) <= 2

    def test_dict_query_payload_accepted(self, client):
        query = tiny_queries(count=1, seed=24)[0]
        body = client.query("tiny", query_graph_to_json(query))
        assert body["coverage"] >= 1

    def test_objective_override(self, client):
        query = tiny_queries(count=1, seed=25)[0]
        body = client.query("tiny", query, objective="edge")
        assert body["objective"] == "edge"
        want = DSQL(tiny_graph(), config=DSQLConfig(k=DEFAULT_K, objective="edge")).query(
            query
        )
        assert body["embeddings"] == [list(e) for e in want.embeddings]
        assert body["coverage"] == want.coverage

    def test_objective_sessions_do_not_cross_memo(self, client):
        # Same query under two objectives: distinct sessions, distinct memos.
        query = tiny_queries(count=1, seed=26)[0]
        base = client.query("tiny", query)
        alt = client.query("tiny", query, objective="edge")
        again = client.query("tiny", query)
        assert alt["objective"] == "edge"
        assert again["objective"] == "vertex"
        assert again["embeddings"] == base["embeddings"]


class TestBatchEndpoint:
    def test_batch_matches_serial_query_many(self, client):
        queries = tiny_queries(count=4, seed=31)
        body = client.batch("tiny", queries, strategy="thread", jobs=2)
        expected = _reference_session().query_many(queries)
        assert body["count"] == len(queries)
        got = [r["embeddings"] for r in body["results"]]
        want = [[list(e) for e in r.embeddings] for r in expected]
        assert got == want
        assert body["executor"]["strategy"] == "thread"
        assert body["executor"]["batch"] == len(queries)

    def test_batch_counts_memo_hits(self, client):
        queries = tiny_queries(count=2, seed=32)
        client.batch("tiny", queries)
        again = client.batch("tiny", queries)
        assert again["cache_hits"] == len(queries)
        assert again["executor"]["searches"] == 0


class TestOpsEndpoints:
    def test_healthz(self, client):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["graphs"] == ["tiny"]
        assert body["admission"]["in_flight"] == 0
        assert body["uptime_ms"] > 0

    def test_healthz_lists_objectives(self, client):
        # Feature detection for clients: the supported objective registry.
        body = client.healthz()
        assert body["objectives"] == ["edge", "vertex", "weighted-vertex"]

    def test_metrics_reflect_traffic(self, client):
        query = tiny_queries(count=1, seed=41)[0]
        client.query("tiny", query)
        body = client.metrics()
        metrics = body["metrics"]
        assert metrics["service.requests"] >= 1
        assert metrics["service.requests.ok"] >= 1
        assert metrics["service.latency_ms"]["count"] >= 1
        assert body["catalog"]["tiny"]["vertices"] == tiny_graph().num_vertices


class TestTypedErrors:
    def test_unknown_graph_404(self, client):
        query = tiny_queries(count=1)[0]
        with pytest.raises(ServiceClientError) as info:
            client.query("nope", query)
        assert (info.value.status, info.value.code) == (404, "unknown_graph")

    def test_invalid_query_400(self, client):
        with pytest.raises(ServiceClientError) as info:
            client.query("tiny", {"labels": ["A", "B"], "edges": []})
        assert (info.value.status, info.value.code) == (400, "invalid_query")

    def test_unknown_post_endpoint_404(self, client, server):
        with pytest.raises(ServiceClientError) as info:
            client._call("POST", "/v1/nope", {"graph": "tiny"})
        assert (info.value.status, info.value.code) == (404, "unknown_endpoint")

    def test_unknown_get_endpoint_404(self, client):
        with pytest.raises(ServiceClientError) as info:
            client._call("GET", "/nope", None)
        assert info.value.status == 404

    def test_invalid_objective_400_on_query(self, client):
        query = tiny_queries(count=1)[0]
        with pytest.raises(ServiceClientError) as info:
            client.query("tiny", query, objective="treewidth")
        assert (info.value.status, info.value.code) == (400, "invalid_objective")
        assert "treewidth" in info.value.message

    def test_invalid_objective_400_on_batch(self, client):
        queries = tiny_queries(count=1)
        with pytest.raises(ServiceClientError) as info:
            client.batch("tiny", queries, objective="treewidth")
        assert (info.value.status, info.value.code) == (400, "invalid_objective")

    def test_process_strategy_rejected(self, client):
        queries = tiny_queries(count=1)
        with pytest.raises(ServiceClientError) as info:
            client.batch("tiny", queries, strategy="process")
        assert (info.value.status, info.value.code) == (400, "invalid_request")

    def test_post_without_content_length_400(self, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.putrequest("POST", "/v1/query", skip_accept_encoding=True)
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()

    def test_invalid_json_body_400(self, client, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("POST", "/v1/query", body=b"{nope")
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()


def _single_slot_server(max_queue=0):
    catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
    catalog.add_graph("tiny", tiny_graph())
    service = QueryService(
        catalog, max_in_flight=1, max_queue=max_queue, retry_after_s=2.5
    )
    return ServiceServer(service, port=0).start()


class TestAdmissionOverHTTP:
    def test_429_when_full(self):
        server = _single_slot_server()
        try:
            # Occupy the only execution slot out-of-band: the next request
            # finds in_flight == max and an empty-capacity queue -> 429.
            assert server.service.admission.acquire()
            client = ServiceClient(server.url, timeout=10.0)
            query = tiny_queries(count=1)[0]
            with pytest.raises(ServiceClientError) as info:
                client.query("tiny", query)
            assert (info.value.status, info.value.code) == (429, "overloaded")
            assert info.value.retry_after_s == 3  # ceil(2.5) from Retry-After
            server.service.admission.release()
            assert client.query("tiny", query)["coverage"] >= 1
        finally:
            server.close()

    def test_rejections_counted(self):
        server = _single_slot_server()
        try:
            server.service.admission.acquire()
            client = ServiceClient(server.url, timeout=10.0)
            with pytest.raises(ServiceClientError):
                client.query("tiny", tiny_queries(count=1)[0])
            server.service.admission.release()
            snapshot = client.metrics()["metrics"]
            assert snapshot["service.requests.rejected"] >= 1
        finally:
            server.close()


class _SlowService(QueryService):
    """A service whose query handler lingers, to make drains observable."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.entered = threading.Event()
        self.hold_s = 0.3

    def handle_query(self, payload, probe=None):
        self.entered.set()
        time.sleep(self.hold_s)
        return super().handle_query(payload, probe)


def _slow_server():
    catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
    catalog.add_graph("tiny", tiny_graph())
    service = _SlowService(catalog, max_in_flight=2, max_queue=2)
    return ServiceServer(service, port=0).start()


class TestDrain:
    def test_close_waits_for_in_flight_request(self):
        server = _slow_server()
        client = ServiceClient(server.url, timeout=10.0)
        query = tiny_queries(count=1)[0]
        outcome = {}

        def send():
            outcome["body"] = client.query("tiny", query)

        requester = threading.Thread(target=send, daemon=True)
        requester.start()
        assert server.service.entered.wait(timeout=5)
        start = time.monotonic()
        server.close()  # must block until the in-flight request completes
        drained_after = time.monotonic() - start
        requester.join(timeout=5)
        assert outcome["body"]["coverage"] >= 1  # served, not dropped
        # close() returned only after the handler's sleep had to finish
        # (upper bound left open: a loaded CI box may drain slowly).
        assert drained_after >= server.service.hold_s * 0.5

    def test_draining_service_says_503(self):
        server = _slow_server()
        try:
            client = ServiceClient(server.url, timeout=10.0)
            server.service.begin_drain()
            body = client.healthz()
            assert body["status"] == "draining"
            with pytest.raises(ServiceClientError) as info:
                client.query("tiny", tiny_queries(count=1)[0])
            assert (info.value.status, info.value.code) == (503, "draining")
        finally:
            server.close()

    def test_closed_server_unreachable(self):
        server = _single_slot_server()
        client = ServiceClient(server.url, timeout=2.0)
        server.close()
        server.close()  # idempotent
        with pytest.raises(ServiceClientError) as info:
            client.healthz()
        assert info.value.status is None
        assert info.value.code == "unreachable"

    def test_sigterm_triggers_drain(self):
        server = _single_slot_server()
        previous = server.install_signal_handlers(signals=(signal.SIGTERM,))
        try:
            signal.raise_signal(signal.SIGTERM)
            assert server._closed.wait(timeout=10)
        finally:
            signal.signal(signal.SIGTERM, previous[signal.SIGTERM])
        client = ServiceClient(server.url, timeout=2.0)
        with pytest.raises(ServiceClientError):
            client.healthz()


class TestCompressionOverride:
    """``use_compression`` over the wire: identical answers, distinct session."""

    def test_query_identical_with_compression(self, client):
        query = tiny_queries(count=1, seed=31)[0]
        base = client.query("tiny", query)
        compressed = client.query("tiny", query, use_compression=True)
        assert compressed["embeddings"] == base["embeddings"]
        assert compressed["coverage"] == base["coverage"]
        # Distinct override config -> distinct session and memo.
        assert not compressed["from_cache"]

    def test_batch_identical_with_compression(self, client):
        queries = tiny_queries(count=3, seed=32)
        base = client.batch("tiny", queries)
        compressed = client.batch("tiny", queries, use_compression=True)
        assert [r["embeddings"] for r in compressed["results"]] == [
            r["embeddings"] for r in base["results"]
        ]
