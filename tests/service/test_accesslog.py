"""The JSONL access log: schema validation, round-trip, and service wiring."""

from __future__ import annotations

import json

import pytest

from repro.core.config import DSQLConfig
from repro.service import (
    AccessLog,
    GraphCatalog,
    QueryService,
    read_access_log,
)
from repro.service.accesslog import ACCESS_LOG_FIELDS, validate_record
from repro.service.schemas import query_graph_to_json
from tests.service.conftest import DEFAULT_K, tiny_graph, tiny_queries


def _record(**overrides):
    base = {
        "v": 1,
        "ts_ms": 1700000000000.0,
        "request_id": 7,
        "client": "alice",
        "path": "/v1/query",
        "status": 200,
        "graph": "tiny",
        "query_key": "deadbeefdeadbeef",
        "estimated_work_units": 35.7,
        "actual_work_units": 42,
        "latency_ms": 3.5,
    }
    base.update(overrides)
    return base


class TestValidateRecord:
    def test_full_record_passes(self):
        assert validate_record(_record()) == _record()

    def test_nullable_fields_accept_none(self):
        record = _record(
            client=None,
            graph=None,
            query_key=None,
            estimated_work_units=None,
            actual_work_units=None,
        )
        assert validate_record(record) == record

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            validate_record(_record(color="green"))

    def test_missing_field_rejected(self):
        record = _record()
        del record["latency_ms"]
        with pytest.raises(ValueError, match="missing field"):
            validate_record(record)

    def test_bool_rejected_in_int_field(self):
        # bool subclasses int; an accidental True must not serialize as 1.
        with pytest.raises(ValueError, match="status"):
            validate_record(_record(status=True))

    def test_wrong_type_rejected(self):
        with pytest.raises(ValueError, match="path"):
            validate_record(_record(path=42))

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="must be an object"):
            validate_record(["not", "a", "record"])

    def test_schema_is_total(self):
        # Every field the writer emits is in the schema and vice versa.
        assert set(_record()) == set(ACCESS_LOG_FIELDS)


class TestRoundTrip:
    def test_record_then_read(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(path)
        log.record(
            ts_ms=1.0,
            request_id=0,
            path="/v1/query",
            status=200,
            latency_ms=2.5,
            client="alice",
            graph="tiny",
            query_key="abc",
            estimated_work_units=10.0,
            actual_work_units=12,
        )
        log.record(ts_ms=2.0, request_id=1, path="/v1/batch", status=400, latency_ms=0.1)
        log.close()
        records = read_access_log(path)
        assert [r["request_id"] for r in records] == [0, 1]
        assert records[0]["client"] == "alice"
        # Optional facts are explicit nulls, never absent keys.
        assert records[1]["client"] is None
        assert records[1]["actual_work_units"] is None
        assert all(set(r) == set(ACCESS_LOG_FIELDS) for r in records)

    def test_appends_across_instances(self, tmp_path):
        path = tmp_path / "access.jsonl"
        for i in range(2):  # a restart must append, not truncate
            log = AccessLog(path)
            log.record(ts_ms=float(i), request_id=i, path="/v1/query", status=200, latency_ms=1.0)
            log.close()
        assert [r["request_id"] for r in read_access_log(path)] == [0, 1]

    def test_read_rejects_corrupt_records(self, tmp_path):
        path = tmp_path / "access.jsonl"
        path.write_text(json.dumps({"v": 1, "bogus": True}) + "\n", encoding="utf-8")
        with pytest.raises(ValueError):
            read_access_log(path)

    def test_record_after_close_is_dropped(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(path)
        log.close()
        log.record(ts_ms=1.0, request_id=0, path="/v1/query", status=200, latency_ms=1.0)
        assert read_access_log(path) == []


class TestServiceWiring:
    @pytest.fixture()
    def logged_service(self, tmp_path):
        catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
        catalog.add_graph("tiny", tiny_graph())
        path = tmp_path / "access.jsonl"
        service = QueryService(catalog, access_log=path)
        yield service, path
        service.close()

    def test_success_line_carries_estimate_and_actual(self, logged_service):
        service, path = logged_service
        query = tiny_queries(count=1, seed=61)[0]
        payload = {"graph": "tiny", "query": query_graph_to_json(query)}
        status, body, _ = service.handle_post(
            "/v1/query", lambda: payload, headers={"X-Client-Id": "alice"}, request_id=5
        )
        assert status == 200
        (record,) = read_access_log(path)
        assert record["path"] == "/v1/query"
        assert record["status"] == 200
        assert record["client"] == "alice"
        assert record["graph"] == "tiny"
        assert record["request_id"] == 5
        assert record["query_key"] is not None and len(record["query_key"]) == 16
        assert record["estimated_work_units"] == body["estimated_cost"]["work_units"]
        assert record["actual_work_units"] == body["stats"]["nodes_expanded"]
        assert record["latency_ms"] >= 0

    def test_error_line_has_null_actual(self, logged_service):
        service, path = logged_service
        bad = {"graph": "tiny", "query": {"labels": ["A", "B"], "edges": []}}
        status, _, _ = service.handle_post("/v1/query", lambda: bad)
        assert status == 400
        (record,) = read_access_log(path)
        assert record["status"] == 400
        assert record["client"] is None
        assert record["actual_work_units"] is None

    def test_batch_line_sums_actuals(self, logged_service):
        service, path = logged_service
        queries = tiny_queries(count=2, seed=62)
        payload = {"graph": "tiny", "queries": [query_graph_to_json(q) for q in queries]}
        status, body, _ = service.handle_post("/v1/batch", lambda: payload)
        assert status == 200
        (record,) = read_access_log(path)
        want = sum(r["stats"]["nodes_expanded"] for r in body["results"])
        assert record["actual_work_units"] == want
        assert record["estimated_work_units"] == body["estimated_cost"]["work_units"]

    def test_every_line_validates(self, logged_service):
        service, path = logged_service
        query = tiny_queries(count=1, seed=63)[0]
        payload = {"graph": "tiny", "query": query_graph_to_json(query)}
        service.handle_post("/v1/query", lambda: payload)
        service.handle_post("/v1/query", lambda: {"nope": 1})
        service.handle_post("/v1/nope", lambda: {})
        records = read_access_log(path)  # read_access_log re-validates
        assert [r["status"] for r in records] == [200, 400, 404]
