"""Cost-aware admission: the work-unit gate, quotas, and invariance.

Three layers of coverage:

* unit tests for :class:`WorkUnitAdmissionController`,
  :class:`NullAdmissionController`, the factory, the count controller's
  occupancy-scaled ``Retry-After`` (the static-hint fix), and
  :class:`ClientQuotas` under a fake clock;
* transport-free end-to-end tests through ``QueryService.handle_post``:
  429 ``overloaded`` vs 429 ``quota_exceeded``, the ``estimated_cost``
  echo, and the /healthz admission mode;
* the admission-invariance property: the gate may delay or reject a
  request, but an *answered* request's results must be bit-identical
  whatever the mode (count / cost / off) — pinned against a serial DSQL
  reference on two registry datasets.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.datasets.registry import make_dataset
from repro.exceptions import ConfigError
from repro.observability import MetricsRegistry
from repro.queries.generator import query_set
from repro.service import (
    AdmissionController,
    ClientQuotas,
    GraphCatalog,
    NullAdmissionController,
    QueryService,
    WorkUnitAdmissionController,
    build_admission_controller,
)
from repro.service.admission import MAX_RETRY_AFTER_S
from repro.service.schemas import query_graph_to_json
from tests.service.conftest import DEFAULT_K, tiny_graph, tiny_queries


class TestWorkUnitController:
    def test_admits_within_budget(self):
        ctl = WorkUnitAdmissionController(work_unit_budget=100.0)
        a = ctl.try_admit(60.0)
        b = ctl.try_admit(40.0)
        assert a is not None and b is not None
        assert ctl.units_in_flight == pytest.approx(100.0)
        assert ctl.in_flight == 2

    def test_rejects_over_budget_when_busy(self):
        ctl = WorkUnitAdmissionController(work_unit_budget=100.0)
        assert ctl.try_admit(60.0) is not None
        assert ctl.try_admit(50.0) is None
        assert ctl.rejected == 1

    def test_idle_gate_admits_any_cost(self):
        # A single query costlier than the whole budget must still run.
        ctl = WorkUnitAdmissionController(work_unit_budget=10.0)
        ticket = ctl.try_admit(1e9)
        assert ticket is not None
        assert ctl.units_in_flight == pytest.approx(1e9)

    def test_zero_cost_always_admits(self):
        # Saturate the gate, then ask for a provably-free request.
        ctl = WorkUnitAdmissionController(work_unit_budget=10.0)
        assert ctl.try_admit(10.0) is not None
        assert ctl.try_admit(1.0) is None
        free = ctl.try_admit(0.0)
        assert free is not None
        ctl.release(free)

    def test_concurrency_guard_caps_cheap_floods(self):
        ctl = WorkUnitAdmissionController(work_unit_budget=1e9, max_in_flight=2)
        assert ctl.try_admit(1.0) is not None
        assert ctl.try_admit(1.0) is not None
        assert ctl.try_admit(1.0) is None  # budget fine, slots exhausted

    def test_release_returns_units(self):
        ctl = WorkUnitAdmissionController(work_unit_budget=100.0)
        ticket = ctl.try_admit(70.0)
        assert ctl.try_admit(50.0) is None
        ctl.release(ticket)
        assert ctl.units_in_flight == pytest.approx(0.0)
        assert ctl.try_admit(50.0) is not None

    def test_release_without_admit_raises(self):
        ctl = WorkUnitAdmissionController()
        with pytest.raises(RuntimeError):
            ctl.release(None)

    def test_retry_after_scales_with_backlog(self):
        ctl = WorkUnitAdmissionController(work_unit_budget=100.0, drain_rate=10.0)
        base = ctl.retry_after_hint(1.0)
        assert base == pytest.approx(1.0)  # idle: nothing to drain
        ctl.try_admit(150.0)  # idle admit, 50 units over budget
        hint_small = ctl.retry_after_hint(1.0, cost=0.0)
        hint_large = ctl.retry_after_hint(1.0, cost=100.0)
        assert hint_small == pytest.approx(50.0 / 10.0)
        assert hint_large == pytest.approx(150.0 / 10.0)
        assert base < hint_small < hint_large

    def test_retry_after_clamped(self):
        ctl = WorkUnitAdmissionController(work_unit_budget=1.0, drain_rate=0.001)
        ctl.try_admit(1e6)
        assert ctl.retry_after_hint(1.0, cost=1e6) == MAX_RETRY_AFTER_S

    def test_gauges_track_units(self):
        registry = MetricsRegistry()
        ctl = WorkUnitAdmissionController(work_unit_budget=100.0, metrics=registry)
        ticket = ctl.try_admit(30.0)
        assert registry.gauge("service.work_units_in_flight").value == pytest.approx(30.0)
        ctl.release(ticket)
        assert registry.gauge("service.work_units_in_flight").value == pytest.approx(0.0)

    def test_describe_snapshot(self):
        ctl = WorkUnitAdmissionController(work_unit_budget=100.0, max_in_flight=8)
        ctl.try_admit(12.5)
        assert ctl.describe() == {
            "mode": "cost",
            "work_unit_budget": 100.0,
            "max_in_flight": 8,
            "in_flight": 1,
            "work_units_in_flight": 12.5,
            "rejected_total": 0,
        }

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"work_unit_budget": 0.0},
            {"max_in_flight": 0},
            {"drain_rate": 0.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            WorkUnitAdmissionController(**kwargs)


class TestCountControllerRetryAfter:
    def test_hint_monotone_in_waiter_count(self):
        # The static-hint fix: a client rejected behind a deep queue must
        # be told to back off longer than one rejected at an empty queue.
        ctl = AdmissionController(max_in_flight=1, max_queue=4)
        assert ctl.acquire()
        hints = [ctl.retry_after_hint(1.0)]
        threads = []
        for n in (1, 2):
            thread = threading.Thread(target=ctl.acquire, daemon=True)
            thread.start()
            threads.append(thread)
            for _ in range(1000):
                if ctl.waiting == n:
                    break
                threading.Event().wait(0.001)
            assert ctl.waiting == n
            hints.append(ctl.retry_after_hint(1.0))
        assert hints[0] < hints[1] < hints[2]
        assert hints == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]
        for thread in threads:  # drain the waiters
            ctl.release()
            thread.join(timeout=5)

    def test_hint_clamped(self):
        ctl = AdmissionController(max_in_flight=1, max_queue=0)
        assert ctl.retry_after_hint(1e6) == MAX_RETRY_AFTER_S


class TestNullController:
    def test_admits_everything(self):
        ctl = NullAdmissionController()
        tickets = [ctl.try_admit(1e12) for _ in range(10)]
        assert all(t is not None for t in tickets)
        assert ctl.in_flight == 10
        for ticket in tickets:
            ctl.release(ticket)
        assert ctl.in_flight == 0
        assert ctl.rejected == 0
        assert ctl.retry_after_hint(2.5) == 2.5
        assert ctl.describe() == {"mode": "off", "in_flight": 0}


class TestFactory:
    def test_builds_each_mode(self):
        count = build_admission_controller("count", 4, 8)
        cost = build_admission_controller("cost", 4, 8, work_unit_budget=123.0)
        off = build_admission_controller("off", 4, 8)
        assert isinstance(count, AdmissionController)
        assert isinstance(cost, WorkUnitAdmissionController)
        assert isinstance(off, NullAdmissionController)
        assert (count.mode, cost.mode, off.mode) == ("count", "cost", "off")
        assert cost.work_unit_budget == 123.0
        # Cost mode keeps a wide concurrency guard: budget is the gate.
        assert cost.max_in_flight == 4 * 8

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            build_admission_controller("vibes", 4, 8)


class _FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestClientQuotas:
    def test_consume_and_refill(self):
        clock = _FakeClock()
        quotas = ClientQuotas(rate=1.0, burst=5.0, clock=clock)
        assert quotas.try_consume("a", 3.0)
        assert not quotas.try_consume("a", 3.0)  # 2 tokens left < 3
        clock.now += 1.0
        assert quotas.try_consume("a", 3.0)  # refilled to 3

    def test_debt_admits_costs_above_burst(self):
        clock = _FakeClock()
        quotas = ClientQuotas(rate=1.0, burst=5.0, clock=clock)
        # A full bucket covers min(cost, burst): the query passes and the
        # balance goes negative instead of rejecting it forever.
        assert quotas.try_consume("big", 12.0)
        assert not quotas.try_consume("big", 0.5)
        # Debt drains at the refill rate: 7 in debt + 0.5 needed = 7.5 s.
        assert quotas.retry_after("big", 0.5) == pytest.approx(7.5)
        clock.now += 8.0
        assert quotas.try_consume("big", 0.5)

    def test_clients_are_isolated(self):
        clock = _FakeClock()
        quotas = ClientQuotas(rate=1.0, burst=5.0, clock=clock)
        assert quotas.try_consume("greedy", 12.0)
        assert not quotas.try_consume("greedy", 1.0)
        assert quotas.try_consume("polite", 1.0)

    def test_retry_after_zero_when_affordable(self):
        quotas = ClientQuotas(rate=1.0, burst=5.0, clock=_FakeClock())
        assert quotas.retry_after("fresh", 2.0) == 0.0

    def test_retry_after_clamped(self):
        clock = _FakeClock()
        quotas = ClientQuotas(rate=0.001, burst=1.0, clock=clock)
        assert quotas.try_consume("a", 500.0)
        assert quotas.retry_after("a", 1.0) == MAX_RETRY_AFTER_S

    def test_lru_eviction_bounds_memory(self):
        clock = _FakeClock()
        quotas = ClientQuotas(rate=1.0, burst=5.0, max_clients=2, clock=clock)
        assert quotas.try_consume("a", 5.0)
        assert quotas.try_consume("b", 5.0)
        assert quotas.try_consume("c", 5.0)  # evicts "a"
        assert quotas.describe()["tracked_clients"] == 2
        # Evicted client restarts with a fresh full bucket.
        assert quotas.try_consume("a", 5.0)

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            ClientQuotas(rate=0.0)
        with pytest.raises(ConfigError):
            ClientQuotas(rate=1.0, burst=-1.0)

    def test_default_burst_is_ten_rates(self):
        quotas = ClientQuotas(rate=3.0)
        assert quotas.burst == 30.0


# ----------------------------------------------------------------------
# Transport-free end-to-end: QueryService.handle_post with gates active.
# ----------------------------------------------------------------------
def _service(**kwargs) -> QueryService:
    catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
    catalog.add_graph("tiny", tiny_graph())
    return QueryService(catalog, **kwargs)


def _query_payload(seed: int = 51):
    query = tiny_queries(count=1, seed=seed)[0]
    return {"graph": "tiny", "query": query_graph_to_json(query)}


class TestCostModeService:
    def test_estimated_cost_echoed(self):
        service = _service(admission_mode="cost")
        try:
            status, body, _ = service.handle_post("/v1/query", _query_payload)
            assert status == 200
            echo = body["estimated_cost"]
            assert echo["work_units"] > 0
            assert echo["lower"] <= echo["work_units"] <= echo["upper"]
        finally:
            service.close()

    def test_healthz_reports_mode(self):
        service = _service(admission_mode="cost", work_unit_budget=777.0)
        try:
            _, body = service.healthz()
            assert body["admission"]["mode"] == "cost"
            assert body["admission"]["work_unit_budget"] == 777.0
        finally:
            service.close()

    def test_saturated_cost_gate_answers_429_overloaded(self):
        # Tiny budget, occupied out-of-band: the next priced request
        # cannot fit and must be shed with a drain-scaled Retry-After.
        service = _service(
            admission_mode="cost", work_unit_budget=1.0, drain_rate=10.0
        )
        try:
            blocker = service.admission.try_admit(1.0)
            assert blocker is not None
            status, body, retry_after = service.handle_post(
                "/v1/query", _query_payload
            )
            assert (status, body["error"]["code"]) == (429, "overloaded")
            assert retry_after is not None and retry_after > service.retry_after_s
            service.admission.release(blocker)
            status, body, _ = service.handle_post("/v1/query", _query_payload)
            assert status == 200
        finally:
            service.close()

    def test_zero_cost_query_passes_saturated_gate(self):
        service = _service(admission_mode="cost", work_unit_budget=1.0)
        try:
            blocker = service.admission.try_admit(1.0)
            payload = {
                "graph": "tiny",
                "query": {"labels": ["NO_SUCH_LABEL", "L0"], "edges": [[0, 1]]},
            }
            status, body, _ = service.handle_post("/v1/query", lambda: payload)
            assert status == 200
            assert body["embeddings"] == []
            assert body["estimated_cost"]["work_units"] == 0.0
            service.admission.release(blocker)
        finally:
            service.close()

    def test_batch_cost_is_summed(self):
        service = _service(admission_mode="cost")
        try:
            queries = tiny_queries(count=3, seed=52)
            payload = {
                "graph": "tiny",
                "queries": [query_graph_to_json(q) for q in queries],
            }
            status, body, _ = service.handle_post("/v1/batch", lambda: payload)
            assert status == 200
            assert body["estimated_cost"]["queries"] == 3
            assert body["estimated_cost"]["work_units"] > 0
        finally:
            service.close()


class TestQuotaService:
    def test_quota_exceeded_is_distinct_from_overloaded(self):
        # Rate so small the first (debt-admitted) request empties the
        # bucket for hours: the same client's next request is quota-shed
        # while a different client passes untouched.
        service = _service(client_quota_rate=0.001)
        try:
            headers = {"X-Client-Id": "greedy"}
            status, _, _ = service.handle_post(
                "/v1/query", _query_payload, headers=headers
            )
            assert status == 200
            status, body, retry_after = service.handle_post(
                "/v1/query", _query_payload, headers=headers
            )
            assert (status, body["error"]["code"]) == (429, "quota_exceeded")
            assert retry_after is not None and retry_after >= service.retry_after_s
            status, _, _ = service.handle_post(
                "/v1/query", _query_payload, headers={"x-client-id": "polite"}
            )
            assert status == 200  # case-insensitive header, separate bucket
        finally:
            service.close()

    def test_anonymous_requests_share_one_bucket(self):
        service = _service(client_quota_rate=0.001)
        try:
            assert service.handle_post("/v1/query", _query_payload)[0] == 200
            status, body, _ = service.handle_post("/v1/query", _query_payload)
            assert (status, body["error"]["code"]) == (429, "quota_exceeded")
        finally:
            service.close()

    def test_quota_rejections_counted(self):
        service = _service(client_quota_rate=0.001)
        try:
            service.handle_post("/v1/query", _query_payload)
            service.handle_post("/v1/query", _query_payload)
            metrics = service.instrumentation.metrics.snapshot()
            assert metrics["service.quota_rejections"] == 1
        finally:
            service.close()

    def test_invalid_request_never_consumes_quota(self):
        service = _service(client_quota_rate=0.001)
        try:
            bad = {"graph": "tiny", "query": {"labels": ["A", "B"], "edges": []}}
            for _ in range(3):  # parse errors must not drain the bucket
                status, body, _ = service.handle_post("/v1/query", lambda: bad)
                assert (status, body["error"]["code"]) == (400, "invalid_query")
            assert service.handle_post("/v1/query", _query_payload)[0] == 200
        finally:
            service.close()

    def test_healthz_reports_quotas(self):
        service = _service(client_quota_rate=2.0, client_quota_burst=50.0)
        try:
            _, body = service.healthz()
            assert body["client_quotas"] == {
                "rate_units_per_s": 2.0,
                "burst_units": 50.0,
                "tracked_clients": 0,
            }
        finally:
            service.close()


# ----------------------------------------------------------------------
# The admission-invariance property: gates shed load, they never change
# answers. Pinned against a serial DSQL reference on two datasets.
# ----------------------------------------------------------------------
INVARIANCE_DATASETS = [("yeast", 0.1), ("human", 0.05)]


@pytest.mark.parametrize("name,scale", INVARIANCE_DATASETS, ids=lambda v: str(v))
def test_admission_mode_never_changes_results(name, scale):
    graph = make_dataset(name, scale=scale, seed=0)
    queries = query_set(graph, 3, 3, seed=77)
    reference = [DSQL(graph, config=DSQLConfig(k=DEFAULT_K)).query(q) for q in queries]
    for mode in ("count", "cost", "off"):
        catalog = GraphCatalog(default_config=DSQLConfig(k=DEFAULT_K))
        catalog.add_graph(name, graph)
        service = QueryService(catalog, admission_mode=mode)
        try:
            for query, want in zip(queries, reference):
                payload = {"graph": name, "query": query_graph_to_json(query)}
                status, body, _ = service.handle_post("/v1/query", lambda: payload)
                assert status == 200, (mode, body)
                assert body["embeddings"] == [list(e) for e in want.embeddings], mode
                assert body["coverage"] == want.coverage, mode
        finally:
            service.close()
