"""Unit tests for :mod:`repro.coverage.exact`."""

from __future__ import annotations

import random

import pytest

from repro.coverage.core import coverage
from repro.coverage.exact import exact_ratio, optimal_coverage
from repro.exceptions import ConfigError

from tests.conftest import brute_force_optimal_coverage


class TestOptimalCoverage:
    def test_trivial(self):
        cover, sel = optimal_coverage([{1, 2}, {3}], 2)
        assert cover == 3
        assert len(sel) <= 2

    def test_k_zero(self):
        assert optimal_coverage([{1}], 0) == (0, [])

    def test_empty_input(self):
        assert optimal_coverage([], 3) == (0, [])

    def test_matches_brute_force_random(self):
        rng = random.Random(11)
        for trial in range(15):
            sets = [frozenset(rng.sample(range(14), 3)) for _ in range(10)]
            for k in (1, 2, 3):
                got, sel = optimal_coverage(sets, k)
                expected = brute_force_optimal_coverage(sets, k)
                assert got == expected, (trial, k)
                assert coverage(sel) == got
                assert len(sel) <= k

    def test_duplicates_and_subsets_pruned(self):
        sets = [{1, 2, 3}, {1, 2, 3}, {1, 2}, {4}]
        cover, sel = optimal_coverage(sets, 2)
        assert cover == 4

    def test_size_guard(self):
        sets = [frozenset({i}) for i in range(50)]
        with pytest.raises(ConfigError, match="raise max_embeddings"):
            optimal_coverage(sets, 3, max_embeddings=10)

    def test_size_guard_can_be_raised(self):
        sets = [frozenset({i}) for i in range(50)]
        cover, _ = optimal_coverage(sets, 3, max_embeddings=100)
        assert cover == 3


class TestExactRatio:
    def test_optimal_solution_ratio_one(self):
        sets = [{1, 2}, {3, 4}]
        assert exact_ratio(sets, sets, 2) == pytest.approx(1.0)

    def test_partial_solution(self):
        sets = [{1, 2}, {3, 4}]
        assert exact_ratio([{1, 2}], sets, 2) == pytest.approx(0.5)

    def test_empty_solution(self):
        assert exact_ratio([], [{1}], 1) == 0.0

    def test_empty_universe(self):
        assert exact_ratio([], [], 1) == 1.0
