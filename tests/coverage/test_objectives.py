"""Unit tests for :mod:`repro.coverage.objectives` + the divergence packs."""

from __future__ import annotations

import pytest

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.coverage.objectives import (
    OBJECTIVE_NAMES,
    VERTEX,
    EdgeCoverage,
    VertexCoverage,
    WeightedVertexCoverage,
    build_weight_profile,
    make_objective,
)
from repro.datasets.paper_figures import objective_packs
from repro.exceptions import ConfigError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph


@pytest.fixture()
def triangle_query():
    return QueryGraph(["a", "b", "c"], [(0, 1), (0, 2), (1, 2)])


@pytest.fixture()
def path_graph():
    # 0-1-2-3 path; degrees 1, 2, 2, 1.
    return LabeledGraph(["a", "b", "a", "b"], [(0, 1), (1, 2), (2, 3)])


class TestRegistry:
    def test_names(self):
        assert OBJECTIVE_NAMES == ("vertex", "edge", "weighted-vertex")

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError, match="unknown objective"):
            make_objective("treewidth")

    def test_make_each_name(self, triangle_query, path_graph):
        for name in OBJECTIVE_NAMES:
            obj = make_objective(name, query=triangle_query, graph=path_graph)
            assert obj.name == name

    def test_edge_requires_query(self):
        with pytest.raises(ConfigError, match="query"):
            make_objective("edge")

    def test_weighted_requires_graph_or_profile(self, triangle_query):
        with pytest.raises(ConfigError, match="data graph"):
            make_objective("weighted-vertex", query=triangle_query)


class TestVertexCoverage:
    def test_elements_is_vertex_set(self):
        assert VERTEX.elements((3, 1, 4)) == frozenset({1, 3, 4})

    def test_elements_frozenset_passthrough(self):
        s = frozenset({1, 2})
        assert VERTEX.elements(s) is s

    def test_flags(self):
        assert VERTEX.unit_weights
        assert VERTEX.vertex_elements
        assert VERTEX.certifies_disjoint_optimal
        assert VERTEX.certifies_exhausted_optimal

    def test_bound_objective(self, triangle_query):
        obj = make_objective("vertex", query=triangle_query)
        assert obj.max_coverage(5) == 15
        assert obj.future_benefit_bound(1, True) == 2
        assert obj.future_benefit_bound(1, False) is None

    def test_unbound_dispatch_raises(self):
        with pytest.raises(ConfigError, match="not bound"):
            VERTEX.max_coverage(5)

    def test_collection_coverage_counts_distinct(self):
        assert VERTEX.collection_coverage([(1, 2, 3), (3, 4, 5)]) == 5


class TestEdgeCoverage:
    def test_elements_are_normalized_data_edges(self, triangle_query):
        obj = EdgeCoverage(triangle_query)
        # Mapping a->9, b->2, c->5 covers the three matched data edges.
        assert obj.elements((9, 2, 5)) == frozenset({(2, 9), (5, 9), (2, 5)})

    def test_per_embedding_count_is_query_edges(self, triangle_query):
        obj = EdgeCoverage(triangle_query)
        assert len(obj.elements((9, 2, 5))) == len(list(triangle_query.edges()))

    def test_vertex_set_input_rejected(self, triangle_query):
        obj = EdgeCoverage(triangle_query)
        with pytest.raises(TypeError, match="vertex set"):
            obj.elements(frozenset({9, 2, 5}))

    def test_flags_forfeit_exhausted(self, triangle_query):
        obj = EdgeCoverage(triangle_query)
        assert not obj.vertex_elements
        assert not obj.certifies_exhausted_optimal
        assert obj.certifies_disjoint_optimal
        assert obj.unit_weights

    def test_max_coverage_and_bound(self, triangle_query):
        obj = EdgeCoverage(triangle_query)
        assert obj.max_coverage(4) == 12
        # Unconditional Lemma-4 surrogate: any embedding adds <= |E(Q)|.
        assert obj.future_benefit_bound(0, False) == 3
        assert obj.future_benefit_bound(2, True) == 3

    def test_shared_vertices_distinct_edges(self, triangle_query):
        # Two triangles sharing one vertex still cover 6 distinct edges.
        obj = EdgeCoverage(triangle_query)
        cov = obj.collection_coverage([(0, 1, 2), (0, 3, 4)])
        assert cov == 6
        assert VERTEX.collection_coverage(
            [frozenset({0, 1, 2}), frozenset({0, 3, 4})]
        ) == 5


class TestWeightedVertexCoverage:
    def test_explicit_weights(self, path_graph, triangle_query):
        obj = make_objective(
            "weighted-vertex",
            query=triangle_query,
            graph=path_graph,
            vertex_weights=[(0, 10.0)],
        )
        assert obj.weight(0) == 10.0
        assert obj.weight(1) == 1  # unlisted vertices default to 1
        assert obj.measure({0, 1}) == 11.0

    def test_degree_derived_default(self, path_graph, triangle_query):
        obj = make_objective("weighted-vertex", query=triangle_query, graph=path_graph)
        assert obj.weight(0) == 1 + path_graph.degree(0) == 2
        assert obj.weight(1) == 1 + path_graph.degree(1) == 3

    def test_flags_forfeit_disjoint(self, path_graph, triangle_query):
        obj = make_objective("weighted-vertex", query=triangle_query, graph=path_graph)
        assert not obj.unit_weights
        assert obj.vertex_elements
        assert not obj.certifies_disjoint_optimal
        assert obj.certifies_exhausted_optimal

    def test_max_coverage_is_top_q_sum(self, path_graph):
        query = QueryGraph(["a", "b"], [(0, 1)])
        obj = make_objective("weighted-vertex", query=query, graph=path_graph)
        # Degree weights 2, 3, 3, 2 -> top-2 sum 6; k=4 -> 24.
        assert obj.max_coverage(4) == 24

    def test_bound_needs_snapshot(self, path_graph):
        query = QueryGraph(["a", "b"], [(0, 1)])
        obj = make_objective("weighted-vertex", query=query, graph=path_graph)
        assert obj.future_benefit_bound(1, True) == (2 - 1) * 3
        assert obj.future_benefit_bound(1, False) is None

    def test_weight_table_validated(self, path_graph):
        with pytest.raises(ConfigError, match="vertex 99"):
            build_weight_profile(path_graph, [(99, 2.0)])


def _run(pack, objective):
    config = DSQLConfig(
        k=pack.k,
        objective=objective,
        vertex_weights=pack.vertex_weights if objective == "weighted-vertex" else None,
    )
    return DSQL(pack.graph, config=config).query(pack.query)


class TestDivergencePacks:
    """The adversarial packs: each objective provably beats `vertex` on its own
    pack (ISSUE acceptance: answers differ, and differ for the right reason)."""

    def test_pack_registry(self):
        packs = objective_packs()
        assert set(packs) == {"edge", "weighted-vertex"}
        for name, pack in packs.items():
            assert pack.objective == name

    def test_edge_pack_answers_differ(self):
        pack = objective_packs()["edge"]
        base = _run(pack, "vertex")
        alt = _run(pack, "edge")
        assert set(base.embeddings) != set(alt.embeddings)
        assert alt.objective == "edge"
        assert alt.coverage_bound == pack.k * len(list(pack.query.edges()))

    def test_edge_pack_divergence_mechanism(self):
        # The vertex run's dispatch ratio is < 0.5, so it enters Phase 2 and
        # swaps out a loss-0 member for one extra *vertex*; the edge run is
        # already past 0.5 in edge units and keeps the Phase-1 answer. Both
        # answers tie on edges covered -- the swap buys vertices, not edges.
        pack = objective_packs()["edge"]
        base = _run(pack, "vertex")
        alt = _run(pack, "edge")
        edge_obj = make_objective("edge", query=pack.query)
        assert base.coverage == 11
        assert VERTEX.collection_coverage(alt.embeddings) == 10
        assert alt.coverage == 16
        assert edge_obj.collection_coverage(base.embeddings) == 16
        assert base.stats.phase2_ran and base.stats.phase2_swaps
        assert not alt.stats.phase2_ran

    def test_weighted_pack_answers_differ(self):
        pack = objective_packs()["weighted-vertex"]
        base = _run(pack, "vertex")
        alt = _run(pack, "weighted-vertex")
        assert set(base.embeddings) != set(alt.embeddings)
        assert alt.objective == "weighted-vertex"

    def test_weighted_pack_divergence_mechanism(self):
        # `vertex` certifies the disjoint Phase-1 answer optimal and stops;
        # `weighted-vertex` forfeits that certificate, runs Phase 2, and swaps
        # in the embedding holding the weight-100 vertex.
        pack = objective_packs()["weighted-vertex"]
        base = _run(pack, "vertex")
        alt = _run(pack, "weighted-vertex")
        assert base.optimal and base.optimal_reason == "disjoint"
        assert not base.stats.phase2_ran
        assert alt.stats.phase2_ran and alt.stats.phase2_swaps
        weighted = make_objective(
            "weighted-vertex",
            query=pack.query,
            graph=pack.graph,
            vertex_weights=pack.vertex_weights,
        )
        assert weighted.collection_coverage(alt.embeddings) == 103.0
        assert weighted.collection_coverage(base.embeddings) == 4
        assert alt.coverage == 103.0

    def test_vertex_baseline_on_packs_reports_default_objective(self):
        for pack in objective_packs().values():
            base = _run(pack, "vertex")
            assert base.objective == "vertex"
            assert base.coverage_bound is None
