"""Unit tests for :mod:`repro.coverage.core`."""

from __future__ import annotations

import pytest

from repro.coverage.core import (
    CoverageTracker,
    as_vertex_set,
    benefit,
    cover_set,
    coverage,
    loss,
)


class TestFreeFunctions:
    def test_coverage(self):
        assert coverage([{1, 2}, {2, 3}]) == 3

    def test_coverage_empty(self):
        assert coverage([]) == 0

    def test_cover_set(self):
        assert cover_set([(1, 2), (3,)]) == {1, 2, 3}

    def test_benefit(self):
        assert benefit({3, 4}, [{1, 2}, {2, 3}]) == 1

    def test_benefit_all_new(self):
        assert benefit({9}, []) == 1

    def test_loss_private_vertices(self):
        assert loss([{1, 2}, {2, 3}], 0) == 1  # vertex 1 is private

    def test_loss_duplicate_member_is_zero(self):
        # Slot-based semantics: removing one copy of a duplicate loses 0.
        assert loss([{1, 2}, {1, 2}], 0) == 0

    def test_loss_requires_valid_index(self):
        with pytest.raises(ValueError, match="index"):
            loss([{1, 2}], 1)

    def test_as_vertex_set_idempotent(self):
        s = frozenset({1})
        assert as_vertex_set(s) is s


class TestTrackerBasics:
    def test_empty(self):
        t = CoverageTracker()
        assert len(t) == 0
        assert t.coverage == 0

    def test_add_and_coverage(self):
        t = CoverageTracker([{1, 2}, {2, 3}])
        assert len(t) == 2
        assert t.coverage == 3

    def test_members_in_slot_order(self):
        t = CoverageTracker()
        t.add({1})
        t.add({2})
        assert t.members() == [frozenset({1}), frozenset({2})]

    def test_remove(self):
        t = CoverageTracker()
        s = t.add({1, 2})
        t.add({2, 3})
        removed = t.remove(s)
        assert removed == frozenset({1, 2})
        assert t.coverage == 2
        assert len(t) == 1

    def test_multiplicity(self):
        t = CoverageTracker([{1, 2}, {2, 3}])
        assert t.multiplicity(2) == 2
        assert t.multiplicity(1) == 1
        assert t.multiplicity(99) == 0

    def test_covers(self):
        t = CoverageTracker([{5}])
        assert t.covers(5)
        assert not t.covers(6)

    def test_duplicate_vertex_sets_handled(self):
        t = CoverageTracker()
        a = t.add({1, 2})
        b = t.add({1, 2})
        assert t.coverage == 2
        t.remove(a)
        assert t.coverage == 2  # second copy still covers
        t.remove(b)
        assert t.coverage == 0


class TestTrackerQuantities:
    def test_benefit(self):
        t = CoverageTracker([{1, 2}])
        assert t.benefit({2, 3, 4}) == 2

    def test_loss_is_private_count(self):
        t = CoverageTracker()
        a = t.add({1, 2})
        t.add({2, 3})
        assert t.loss(a) == 1

    def test_loss_plus_discounts_h(self):
        t = CoverageTracker()
        a = t.add({1, 2})
        t.add({2, 3})
        # L(a) = 1 (vertex 1); L+(a, h={1,9}) = 0 since h re-covers 1.
        assert t.loss_plus(a, {1, 9}) == 0
        assert t.loss_plus(a, {9}) == 1

    def test_min_loss_member(self):
        t = CoverageTracker()
        t.add({1, 2, 3})
        b = t.add({3, 4})
        slot, val = t.min_loss_member()
        assert slot == b and val == 1

    def test_min_loss_member_empty_raises(self):
        with pytest.raises(ValueError):
            CoverageTracker().min_loss_member()

    def test_min_loss_plus_member(self):
        t = CoverageTracker()
        a = t.add({1, 2})
        t.add({3, 4})
        slot, val = t.min_loss_plus_member({1, 2})
        assert slot == a and val == 0

    def test_quantities_match_free_functions(self):
        members = [{1, 2, 3}, {3, 4}, {5}]
        t = CoverageTracker(members)
        assert t.coverage == coverage(members)
        assert t.benefit({4, 5, 6}) == benefit({4, 5, 6}, members)
        for i, slot in enumerate(t.slots()):
            assert t.loss(slot) == loss(members, i)

    def test_incremental_consistency_random(self):
        """Tracker quantities stay consistent under add/remove churn."""
        import random

        rng = random.Random(0)
        t = CoverageTracker()
        live = []
        for step in range(200):
            if live and rng.random() < 0.4:
                slot = live.pop(rng.randrange(len(live)))
                t.remove(slot)
            else:
                emb = frozenset(rng.randrange(20) for _ in range(3))
                live.append(t.add(emb))
            members = t.members()
            assert t.coverage == coverage(members)
