"""Tests for the Lemma 5 adversarial construction (Appendix A.5)."""

from __future__ import annotations

import pytest

from repro.coverage.adversarial import (
    adversarial_run,
    lemma5_core_embeddings,
    lemma5_phase2_embeddings,
    lemma5_ratio_bound,
)
from repro.coverage.swap import Swap1, Swap2, SwapAlpha, swap_stream
from repro.exceptions import ConfigError


class TestConstruction:
    def test_core_shared(self):
        embeddings, core = lemma5_core_embeddings(4, 5)
        assert len(core) == 4
        for emb in embeddings:
            assert core < emb
            assert len(emb) == 5

    def test_singletons_distinct(self):
        embeddings, core = lemma5_core_embeddings(6, 4, extra=3)
        singles = [next(iter(e - core)) for e in embeddings]
        assert len(set(singles)) == len(embeddings) == 9

    def test_phase2_groups(self):
        groups = lemma5_phase2_embeddings([10, 11, 12, 13, 14, 15, 16], 3)
        assert groups == [frozenset({10, 11, 12}), frozenset({13, 14, 15})]

    def test_ratio_bound_decreases_with_k(self):
        values = [lemma5_ratio_bound(k, 5) for k in (2, 8, 32, 128, 1024)]
        assert values == sorted(values, reverse=True)
        # For fixed delta the k-limit is 1/(2 - 1/delta); it reaches 0.5
        # only as delta grows too (the paper's "large k" statement).
        assert values[-1] == pytest.approx(1 / (2 - 1 / 5), abs=0.01)

    def test_ratio_bound_limit_half_for_large_delta(self):
        assert lemma5_ratio_bound(10_000_000, 1_000) == pytest.approx(0.5, abs=0.01)

    def test_validation(self):
        with pytest.raises(ConfigError):
            lemma5_ratio_bound(0, 5)
        with pytest.raises(ConfigError):
            lemma5_core_embeddings(3, 1)


class TestAdversaryBitesGreedyOnline:
    @pytest.mark.parametrize(
        "condition", [Swap1(), Swap2(), SwapAlpha(alpha=1.0)], ids=lambda c: c.name
    )
    def test_streaming_algorithms_capped_near_half(self, condition):
        """On the adversarial stream, one-pass swap algorithms end well
        below the optimum — bounded by roughly the Lemma 5 ceiling."""
        k, delta = 12, 5

        def algorithm(stream):
            return swap_stream(list(stream), k, condition).members

        algo_cover, opt_cover = adversarial_run(algorithm, k, delta, extra=9)
        assert opt_cover > 0
        ratio = algo_cover / opt_cover
        # The closed-form ceiling is for the idealized adversary; allow
        # modest slack for the concrete two-phase simulation.
        assert ratio <= lemma5_ratio_bound(k, delta) + 0.15, ratio

    def test_lower_bound_guarantee_still_met(self):
        """Even on the adversary, SWAPα keeps its 0.25-style guarantee."""
        k, delta = 10, 5

        def algorithm(stream):
            return swap_stream(list(stream), k, SwapAlpha(alpha=1.0)).members

        algo_cover, opt_cover = adversarial_run(algorithm, k, delta, extra=5)
        assert algo_cover >= 0.25 * opt_cover
