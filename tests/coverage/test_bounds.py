"""Unit tests for :mod:`repro.coverage.bounds` — the paper's closed forms."""

from __future__ import annotations

import pytest

from repro.coverage.bounds import (
    GAMMA_FIXED_POINT,
    alpha_gamma_schedule,
    coverage_upper_bound,
    greedy_ratio_bound,
    next_alpha,
    next_gamma,
    overall_ratio_bound,
    phase1_ratio_bound,
    single_scan_ratio,
)
from repro.exceptions import ConfigError


class TestSchedule:
    def test_paper_progression(self):
        """Section 6.1.2: α/γ = (1, .25), (.5, 1/3), (1/3, 3/8), (.25, .4), (.2, ~.4167)."""
        schedule = alpha_gamma_schedule(7)
        expected = [
            (1.0, 0.25),
            (0.5, 1 / 3),
            (1 / 3, 0.375),
            (0.25, 0.4),
            (0.2, 5 / 12),
        ]
        for (alpha, gamma), (ea, eg) in zip(schedule, expected):
            assert alpha == pytest.approx(ea)
            assert gamma == pytest.approx(eg)

    def test_gamma_monotone_to_half(self):
        schedule = alpha_gamma_schedule(40)
        gammas = [g for _, g in schedule]
        assert gammas == sorted(gammas)
        assert gammas[-1] < GAMMA_FIXED_POINT
        assert gammas[-1] == pytest.approx(0.5, abs=0.02)

    def test_next_alpha_formula(self):
        assert next_alpha(0.0) == 1.0
        assert next_alpha(0.25) == 0.5

    def test_next_gamma_formula(self):
        assert next_gamma(0.0) == 0.25
        assert next_gamma(0.25) == pytest.approx(1 / 3)

    def test_next_alpha_domain(self):
        with pytest.raises(ConfigError):
            next_alpha(0.5)
        with pytest.raises(ConfigError):
            next_alpha(-0.1)

    def test_schedule_stops_at_half(self):
        assert alpha_gamma_schedule(5, gamma0=0.5) == []

    def test_negative_scans_rejected(self):
        with pytest.raises(ConfigError):
            alpha_gamma_schedule(-1)

    def test_fixed_point(self):
        assert next_gamma(GAMMA_FIXED_POINT) == pytest.approx(GAMMA_FIXED_POINT)


class TestSingleScanRatio:
    def test_inequality6_form(self):
        # alpha=1, gamma0=0 -> 1/4.
        assert single_scan_ratio(1.0, 0.0) == pytest.approx(0.25)

    def test_alpha_from_schedule_maximizes(self):
        gamma0 = 0.2
        best_alpha = next_alpha(gamma0)
        best = single_scan_ratio(best_alpha, gamma0)
        for alpha in (0.1, 0.3, 0.8, 1.5):
            assert best >= single_scan_ratio(alpha, gamma0) - 1e-12

    def test_negative_alpha_rejected(self):
        with pytest.raises(ConfigError):
            single_scan_ratio(-1.0, 0.0)


class TestPhase1Bound:
    def test_level0_optimal(self):
        assert phase1_ratio_bound(5, 0, 10) == pytest.approx(1.0)

    def test_theorem3_form(self):
        q, i, k = 6, 2, 10
        assert phase1_ratio_bound(q, i, k) == pytest.approx((q - i) / q + i / (k * q))

    def test_decreasing_in_level(self):
        vals = [phase1_ratio_bound(6, i, 10) for i in range(6)]
        assert vals == sorted(vals, reverse=True)

    def test_domain(self):
        with pytest.raises(ConfigError):
            phase1_ratio_bound(5, 5, 10)
        with pytest.raises(ConfigError):
            phase1_ratio_bound(0, 0, 10)


class TestOverallBound:
    def test_theorem4_form(self):
        assert overall_ratio_bound(2, 5) == pytest.approx(0.25 * 1.5)  # k=2 dominates
        assert overall_ratio_bound(10, 5) == pytest.approx(0.25 * 1.2)  # q=5 dominates

    def test_paper_examples(self):
        # "if k = 2, gamma_1 = 0.375; if q = 5, then gamma_1 = 0.3".
        assert overall_ratio_bound(2, 100) == pytest.approx(0.375)
        assert overall_ratio_bound(100, 5) == pytest.approx(0.3)

    def test_domain(self):
        with pytest.raises(ConfigError):
            overall_ratio_bound(0, 5)


class TestMisc:
    def test_greedy_bound(self):
        assert greedy_ratio_bound() == pytest.approx(0.632, abs=1e-3)

    def test_coverage_upper_bound(self):
        assert coverage_upper_bound(40, 5) == 200

    def test_coverage_upper_bound_domain(self):
        with pytest.raises(ConfigError):
            coverage_upper_bound(0, 5)
