"""Unit tests for :mod:`repro.coverage.swap` (the streaming family)."""

from __future__ import annotations

import random

import pytest

from repro.coverage.core import CoverageTracker, coverage
from repro.coverage.swap import (
    Swap0,
    Swap1,
    Swap2,
    SwapA,
    SwapAlpha,
    swap_stream,
)
from repro.exceptions import ConfigError

from tests.conftest import brute_force_optimal_coverage

ALL_CONDITIONS = [Swap0(), Swap1(), Swap2(), SwapA(), SwapAlpha(alpha=1.0)]


def random_stream(seed: int, n: int = 30, universe: int = 25, size: int = 4):
    rng = random.Random(seed)
    return [frozenset(rng.sample(range(universe), size)) for _ in range(n)]


class TestSwapStreamMechanics:
    def test_k_validation(self):
        with pytest.raises(ConfigError):
            swap_stream([], 0, Swap0())

    def test_oversized_initial_rejected(self):
        with pytest.raises(ConfigError, match="initial"):
            swap_stream([], 1, Swap0(), initial=[{1}, {2}])

    def test_collection_capacity_respected(self):
        run = swap_stream(random_stream(1), 5, SwapAlpha())
        assert len(run.members) <= 5

    def test_progressive_init_skips_zero_benefit(self):
        stream = [{1, 2}, {1, 2}, {3, 4}]
        run = swap_stream(stream, 3, SwapAlpha(), progressive_init=True)
        assert len(run.members) == 2  # the duplicate was not admitted

    def test_plain_init_takes_first_k(self):
        stream = [{1, 2}, {1, 2}, {3, 4}]
        run = swap_stream(stream, 3, SwapAlpha(), progressive_init=False)
        assert len(run.members) == 3

    def test_initial_collection_used(self):
        run = swap_stream([{9, 10}], 2, SwapAlpha(), initial=[{1, 2}])
        assert frozenset({1, 2}) in run.members

    def test_statistics_counted(self):
        stream = random_stream(2)
        run = swap_stream(stream, 3, SwapAlpha())
        assert run.examined == len(stream)
        assert run.admitted >= min(3, len(stream)) - 2  # some skipped as dupes
        assert run.swaps >= 0


class TestCoverageNeverDecreases:
    """All conditions only swap when coverage does not drop."""

    @pytest.mark.parametrize("condition", ALL_CONDITIONS, ids=lambda c: c.name)
    def test_final_at_least_initial_k(self, condition):
        for seed in range(5):
            stream = random_stream(seed)
            baseline = swap_stream(stream[: 4], 4, condition, progressive_init=False)
            run = swap_stream(stream, 4, condition, progressive_init=False)
            assert run.coverage >= baseline.coverage, (condition.name, seed)


class TestGuarantees:
    @pytest.mark.parametrize(
        "condition", [Swap1(), Swap2(), SwapA(), SwapAlpha(alpha=1.0)],
        ids=lambda c: c.name,
    )
    def test_quarter_guarantee_on_random_instances(self, condition):
        for seed in range(10):
            stream = random_stream(seed, n=25, universe=20, size=4)
            k = 4
            run = swap_stream(stream, k, condition)
            opt = brute_force_optimal_coverage(stream, k)
            assert run.coverage >= 0.25 * opt, (condition.name, seed)

    def test_theorem6_bound_with_progressive_init(self):
        """SWAPα(α=1) with progressive init: >= 0.25*(1 + max(1/k, 1/q))."""
        q, k = 4, 4
        for seed in range(10):
            stream = random_stream(seed, n=30, universe=24, size=q)
            run = swap_stream(stream, k, SwapAlpha(alpha=1.0))
            opt = brute_force_optimal_coverage(stream, k)
            bound = 0.25 * (1 + max(1 / k, 1 / q))
            assert run.coverage >= bound * opt - 1e-9, seed


class TestConditionSemantics:
    def test_swap0_any_improvement(self):
        t = CoverageTracker([{1, 2}, {3, 4}])
        assert Swap0().propose(t, frozenset({5, 6, 1, 3}), 2) is not None

    def test_swap0_rejects_no_improvement(self):
        t = CoverageTracker([{1, 2}, {3, 4}])
        assert Swap0().propose(t, frozenset({1, 3}), 2) is None

    def test_swap1_twice_loss(self):
        t = CoverageTracker([{1, 2}, {3, 4}])
        # Every member has loss 2; benefit 4 >= 2*2 triggers.
        assert Swap1().propose(t, frozenset({5, 6, 7, 8}), 2) is not None
        # Benefit 2 with L+ = 2 everywhere (nothing re-covered): 2 < 4.
        assert Swap1().propose(t, frozenset({5, 6}), 2) is None

    def test_swap1_uses_loss_plus(self):
        t = CoverageTracker([{1, 2}, {3, 4}])
        # h re-covers {1,2}: L+ of that member is 0, so benefit 1 suffices.
        assert Swap1().propose(t, frozenset({1, 2, 9}), 2) is not None

    def test_swap2_multiplicative_threshold(self):
        t = CoverageTracker([{1, 2}, {3, 4}])
        k = 2
        # current = 4; need after*k >= (k+1)*current -> after >= 6.
        assert Swap2().propose(t, frozenset({5, 6, 7, 8}), k) is not None
        assert Swap2().propose(t, frozenset({5, 1, 3, 2}), k) is None

    def test_swap_alpha_threshold(self):
        t = CoverageTracker([{1, 2}, {3, 4}])
        # min loss = 2; alpha=1 needs benefit >= 4.
        assert SwapAlpha(alpha=1.0).propose(t, frozenset({5, 6, 7, 8}), 2) is not None
        assert SwapAlpha(alpha=1.0).propose(t, frozenset({5, 6, 7, 1}), 2) is None
        # alpha=0 needs benefit >= 2.
        assert SwapAlpha(alpha=0.0).propose(t, frozenset({5, 6, 1, 3}), 2) is not None

    def test_swap_alpha_negative_rejected(self):
        with pytest.raises(ConfigError):
            SwapAlpha(alpha=-0.5)

    def test_swap_a_weights(self):
        # weight 1.0 behaves like SWAP1's condition on the margin.
        t = CoverageTracker([{1, 2}, {3, 4}])
        h = frozenset({5, 6, 7, 8})
        assert SwapA(hybrid_weight=1.0).propose(t, h, 2) is not None
        assert SwapA(hybrid_weight=0.0).propose(t, h, 2) is not None

    def test_zero_benefit_never_swaps(self):
        t = CoverageTracker([{1, 2}, {3, 4}])
        h = frozenset({1, 3})
        for condition in ALL_CONDITIONS:
            assert condition.propose(t, h, 2) is None, condition.name
