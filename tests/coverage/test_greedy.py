"""Unit tests for :mod:`repro.coverage.greedy`."""

from __future__ import annotations

import math

from repro.coverage.core import coverage
from repro.coverage.greedy import greedy_max_coverage

from tests.conftest import brute_force_optimal_coverage


class TestGreedy:
    def test_selects_best_first(self):
        sets = [{1, 2}, {1, 2, 3, 4}, {5}]
        out = greedy_max_coverage(sets, 1)
        assert out == [frozenset({1, 2, 3, 4})]

    def test_marginal_gain_drives_second_pick(self):
        sets = [{1, 2, 3}, {3, 4}, {1, 2, 4}]
        out = greedy_max_coverage(sets, 2)
        assert out[0] == frozenset({1, 2, 3})
        assert out[1] == frozenset({3, 4})  # gain 1 vs gain 1; earlier wins
        assert coverage(out) == 4

    def test_stops_when_no_gain(self):
        sets = [{1, 2}, {1}, {2}]
        out = greedy_max_coverage(sets, 3)
        assert len(out) == 1

    def test_k_zero(self):
        assert greedy_max_coverage([{1}], 0) == []

    def test_empty_input(self):
        assert greedy_max_coverage([], 5) == []

    def test_deterministic_tie_break(self):
        sets = [{1, 2}, {3, 4}]
        assert greedy_max_coverage(sets, 1) == [frozenset({1, 2})]

    def test_respects_k(self):
        sets = [{i} for i in range(10)]
        assert len(greedy_max_coverage(sets, 4)) == 4

    def test_guarantee_against_exact_optimum(self):
        """Greedy achieves >= (1 - 1/e) of optimal on random instances."""
        import random

        rng = random.Random(7)
        for trial in range(20):
            sets = [frozenset(rng.sample(range(15), 4)) for _ in range(12)]
            k = 3
            got = coverage(greedy_max_coverage(sets, k))
            opt = brute_force_optimal_coverage(sets, k)
            assert got >= math.floor((1 - 1 / math.e) * opt), (trial, got, opt)
