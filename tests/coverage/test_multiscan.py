"""Unit tests for :mod:`repro.coverage.multiscan`."""

from __future__ import annotations

import random

import pytest

from repro.coverage.core import coverage
from repro.coverage.multiscan import dsq_ns, swap_alpha_multiscan
from repro.exceptions import ConfigError

from tests.conftest import brute_force_optimal_coverage


def random_stream(seed: int, n: int = 25, universe: int = 20, size: int = 4):
    rng = random.Random(seed)
    return [frozenset(rng.sample(range(universe), size)) for _ in range(n)]


class TestDsqNs:
    def test_validation(self):
        with pytest.raises(ConfigError):
            dsq_ns([], 0, 3)
        with pytest.raises(ConfigError):
            dsq_ns([], 3, 0)

    def test_disjoint_first_scan(self):
        sets = [{1, 2}, {3, 4}, {1, 3}]
        res = dsq_ns(sets, 2, 2)
        assert res.stop_level == 0
        assert res.members == [frozenset({1, 2}), frozenset({3, 4})]

    def test_terminates_at_k(self):
        sets = [{i, i + 100} for i in range(10)]
        res = dsq_ns(sets, 4, 2)
        assert len(res.members) == 4

    def test_relaxes_levels(self):
        # Only overlapping sets: the second scan must admit them.
        sets = [{1, 2}, {2, 3}, {3, 4}]
        res = dsq_ns(sets, 3, 2)
        assert res.coverage == 4
        assert res.stop_level >= 1

    def test_optimal_when_under_k(self):
        """|T| < k after all scans -> coverage equals the true optimum."""
        for seed in range(8):
            sets = random_stream(seed, n=6, universe=10, size=3)
            res = dsq_ns(sets, 10, 3)
            if len(res.members) < 10:
                opt = brute_force_optimal_coverage(sets, 10)
                assert res.coverage == opt, seed

    def test_per_scan_coverage_monotone(self):
        sets = random_stream(3)
        res = dsq_ns(sets, 5, 4)
        assert res.per_scan_coverage == sorted(res.per_scan_coverage)


class TestSwapAlphaMultiscan:
    def test_validation(self):
        with pytest.raises(ConfigError):
            swap_alpha_multiscan([], 3, num_scans=0)

    def test_multiscan_never_worse_than_single(self):
        for seed in range(6):
            stream = random_stream(seed)
            single = swap_alpha_multiscan(stream, 4, num_scans=1)
            multi = swap_alpha_multiscan(stream, 4, num_scans=4)
            assert multi.coverage >= single.coverage, seed

    def test_stops_at_gamma_half(self):
        stream = random_stream(1)
        res = swap_alpha_multiscan(stream, 4, num_scans=50)
        # The schedule can only run while gamma < 0.5; gamma_t grows fast,
        # and stable passes stop early, so far fewer than 50 scans happen.
        assert res.scans < 50

    def test_stable_pass_short_circuits(self):
        stream = [frozenset({i, i + 50}) for i in range(4)]
        res = swap_alpha_multiscan(stream, 4, num_scans=5)
        assert res.scans <= 2

    def test_coverage_matches_members(self):
        stream = random_stream(2)
        res = swap_alpha_multiscan(stream, 4, num_scans=3)
        assert res.coverage == coverage(res.members)

    def test_respects_k(self):
        stream = random_stream(4)
        res = swap_alpha_multiscan(stream, 3, num_scans=3)
        assert len(res.members) <= 3
