"""Unit tests for :mod:`repro.indexes.signature`."""

from __future__ import annotations

import pytest

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.signature import (
    passes_all_filters,
    passes_degree_filter,
    passes_label_filter,
    passes_signature_filter,
    query_signature,
)


@pytest.fixture()
def setting():
    # v0(a)-v1(b), v1-v2(c), v3(a) isolated-ish: v3-v4(b)
    graph = LabeledGraph(["a", "b", "c", "a", "b"], [(0, 1), (1, 2), (3, 4)])
    # query: a-b-c path
    query = QueryGraph(["a", "b", "c"], [(0, 1), (1, 2)])
    return graph, query


class TestIndividualFilters:
    def test_label_filter(self, setting):
        graph, query = setting
        assert passes_label_filter(graph, query, 0, 0)
        assert not passes_label_filter(graph, query, 0, 1)

    def test_degree_filter(self, setting):
        graph, query = setting
        # query node 1 ("b") has degree 2; v4 ("b") has degree 1.
        assert passes_degree_filter(graph, query, 1, 1)
        assert not passes_degree_filter(graph, query, 1, 4)

    def test_signature_filter(self, setting):
        graph, query = setting
        # NS_Q(1) = {a, c}; NS(v1) = {a, c} ok; NS(v4) = {a} fails.
        assert passes_signature_filter(graph, query, 1, 1)
        assert not passes_signature_filter(graph, query, 1, 4)

    def test_query_signature(self, setting):
        _, query = setting
        assert query_signature(query, 1) == frozenset({"a", "c"})
        assert query_signature(query, 0) == frozenset({"b"})


class TestCombinedFilter:
    def test_all_pass(self, setting):
        graph, query = setting
        assert passes_all_filters(graph, query, 1, 1)

    def test_label_short_circuits(self, setting):
        graph, query = setting
        assert not passes_all_filters(graph, query, 0, 2)

    def test_degree_blocks(self, setting):
        graph, query = setting
        assert not passes_all_filters(graph, query, 1, 4)

    def test_signature_blocks(self, setting):
        graph, query = setting
        # v3 ("a") neighbors only b; query node 0 needs NS containing {b}: ok.
        assert passes_all_filters(graph, query, 0, 3)
        # But for a query whose "a" node needs {b, c}:
        q2 = QueryGraph(["a", "b", "c"], [(0, 1), (0, 2), (1, 2)])
        assert not passes_all_filters(graph, q2, 0, 3)

    def test_filters_are_necessary_conditions(self, setting):
        """Any true embedding vertex must pass all filters for its node."""
        graph, query = setting
        # (0, 1, 2) is an embedding of the path query.
        for u, v in enumerate((0, 1, 2)):
            assert passes_all_filters(graph, query, u, v)
