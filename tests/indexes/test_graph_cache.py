"""Tests for the shared per-graph index cache (repro.indexes.graph_cache)."""

from __future__ import annotations

import pytest

from repro.graph.labeled_graph import LabeledGraph
from repro.indexes.graph_cache import GraphIndexCache

LABELS = ["a", "b", "b", "a", "c"]
EDGES = [(0, 1), (1, 2), (0, 2), (1, 3), (3, 4)]


@pytest.fixture()
def graph():
    return LabeledGraph(LABELS, EDGES)


@pytest.fixture()
def cache(graph):
    return graph.index_cache()


def test_cache_is_pinned(graph):
    assert graph.index_cache() is graph.index_cache()
    assert GraphIndexCache.for_graph(graph) is graph.index_cache()


def test_label_index(cache):
    assert cache.label_index == {"a": (0, 3), "b": (1, 2), "c": (4,)}
    assert cache.vertices_with_label("b") == (1, 2)
    assert cache.vertices_with_label("nope") == ()


def test_label_ids(cache):
    assert cache.label_id("a") == 0
    assert cache.label_id("c") == 2
    assert cache.label_id("nope") is None


def test_signatures(cache):
    assert cache.signature(0) == frozenset({"b"})
    assert cache.signature(1) == frozenset({"a", "b"})
    assert cache.signature(4) == frozenset({"a"})
    # Equal signatures are interned to one object.
    same = [v for v in range(5) if cache.signature_mask(v) == cache.signature_mask(0)]
    for v in same:
        assert cache.signature(v) is cache.signature(0)


def test_signature_masks_match_frozensets(cache):
    for v in range(5):
        labels = {cache.label_table[lid] for lid in range(3) if cache.signature_mask(v) >> lid & 1}
        assert labels == set(cache.signature(v))


def test_mask_for(cache):
    assert cache.mask_for([]) == 0
    assert cache.mask_for(["a"]) == 1
    assert cache.mask_for(["a", "b"]) == 3
    assert cache.mask_for(["a", "zzz"]) is None


def test_candidate_pool_filters(cache):
    assert cache.candidate_pool("b") == (1, 2)
    assert cache.candidate_pool("b", min_degree=3) == (1,)
    mask_c = cache.mask_for(["c"])
    # Only vertex 3 has a neighbor labeled "c".
    assert cache.candidate_pool("a", signature_mask=mask_c) == (3,)
    assert cache.candidate_pool("missing") == ()


def test_candidate_pool_memoized(cache):
    before = cache.memo_info()
    p1 = cache.candidate_pool("b", min_degree=2)
    p2 = cache.candidate_pool("b", min_degree=2)
    assert p1 is p2
    after = cache.memo_info()
    assert after["hits"] == before["hits"] + 1
    assert after["misses"] == before["misses"] + 1


def test_memo_lru_eviction(graph):
    cache = GraphIndexCache(graph, candidate_memo_size=2)
    cache.candidate_pool("a", min_degree=1)
    cache.candidate_pool("a", min_degree=2)
    cache.candidate_pool("a", min_degree=3)  # evicts min_degree=1
    assert cache.memo_info()["size"] == 2
    cache.candidate_pool("a", min_degree=1)  # miss again
    assert cache.candidate_memo_hits == 0
    assert cache.candidate_memo_misses == 4


def test_memo_disabled(graph):
    cache = GraphIndexCache(graph, candidate_memo_size=0)
    cache.candidate_pool("a")
    cache.candidate_pool("a")
    assert cache.memo_info() == {"hits": 0, "misses": 2, "size": 0}


def test_cache_agrees_across_backends(graph):
    other = graph.with_backend("set").index_cache()
    mine = graph.index_cache()
    assert other.label_index == mine.label_index
    assert other.signature_masks == mine.signature_masks
    assert [other.signature(v) for v in range(5)] == [mine.signature(v) for v in range(5)]
    assert other.candidate_pool("b", min_degree=2) == mine.candidate_pool("b", min_degree=2)
