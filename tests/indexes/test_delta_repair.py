"""Delta-based repair of :class:`GraphIndexCache` under live mutation.

The keystone invariant: after any mutation sequence, every queryable
structure of the delta-repaired cache — label index, NS signatures,
degrees, candidate pools — must equal what a cache *built from scratch*
over the mutated graph holds. The repair is allowed to differ only in
bookkeeping (epoch identity, mutation log, memo warmth), never in
answers.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.graph.labeled_graph import LabeledGraph
from repro.indexes.graph_cache import GraphIndexCache

BACKENDS = ("csr", "set")


def small_graph(backend: str = "csr") -> LabeledGraph:
    return LabeledGraph(
        ["a", "b", "b", "c", "a", "c"],
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)],
        backend=backend,
    )


def assert_cache_equivalent(repaired: GraphIndexCache, fresh: GraphIndexCache) -> None:
    assert repaired.label_index == fresh.label_index
    assert repaired.signature_masks == fresh.signature_masks
    assert [repaired.signature(v) for v in range(len(fresh.degrees))] == [
        fresh.signature(v) for v in range(len(fresh.degrees))
    ]
    assert repaired.degrees == fresh.degrees
    assert np.array_equal(repaired.degree_array, fresh.degree_array)
    assert repaired.label_table == fresh.label_table
    assert repaired.label_to_id == fresh.label_to_id


@pytest.mark.parametrize("backend", BACKENDS)
class TestDeltaRepairEquivalence:
    def test_single_edge_ops(self, backend):
        g = small_graph(backend)
        cache = g.index_cache()
        g.add_edge(0, 3)
        g.remove_edge(1, 2)
        assert_cache_equivalent(cache, GraphIndexCache(g))

    def test_add_vertex_repairs_label_index(self, backend):
        g = small_graph(backend)
        cache = g.index_cache()
        v = g.add_vertex("b")
        assert v in cache.label_index["b"]
        assert cache.signature(v) == frozenset()
        w = g.add_vertex("zz")  # brand-new label
        assert cache.label_index["zz"] == (w,)
        g.add_edge(v, w)
        assert cache.signature(v) == frozenset({"zz"})
        assert_cache_equivalent(cache, GraphIndexCache(g))

    def test_random_mutation_script(self, backend):
        g = small_graph(backend)
        cache = g.index_cache()
        rng = random.Random(23)
        labels = ["a", "b", "c", "d"]
        for _ in range(120):
            r = rng.random()
            n = g.num_vertices
            if r < 0.15:
                g.add_vertex(rng.choice(labels))
            elif r < 0.6:
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    g.add_edge(u, v)
            else:
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    g.remove_edge(u, v)
        assert_cache_equivalent(cache, GraphIndexCache(g))


class TestTargetedInvalidation:
    def test_pool_memo_evicts_only_dirty_labels(self):
        g = small_graph("csr")
        cache = g.index_cache()
        lid_a = cache.label_id("a")
        lid_c = cache.label_id("c")
        # Warm two pools: one over 'a', one over 'c'.
        pool_a = cache.candidate_pool("a", 1)
        pool_c = cache.candidate_pool("c", 1)
        assert pool_a and pool_c
        keys = set(cache._pool_memo)
        assert any(k[0] == lid_a for k in keys) and any(k[0] == lid_c for k in keys)
        # Mutating an edge between two 'a'/'b' vertices leaves 'c' pools warm.
        g.add_edge(0, 2)  # labels 'a' and 'b'
        keys_after = set(cache._pool_memo)
        assert all(k[0] != lid_a for k in keys_after)
        assert any(k[0] == lid_c for k in keys_after)

    def test_adjacency_masks_evict_only_touched_vertices(self):
        g = small_graph("csr")
        cache = g.index_cache()
        m3 = cache.adjacency_mask(3)
        m0 = cache.adjacency_mask(0)
        assert m3 and m0
        g.add_edge(0, 2)
        assert 0 not in cache._adj_masks and 2 not in cache._adj_masks
        assert cache._adj_masks.get(3) == m3
        # Recomputed mask reflects the new edge.
        assert cache.adjacency_mask(0) == m0 | (1 << 2)

    def test_plan_cache_evicts_only_intersecting_plans(self):
        from repro.indexes.plans import PlanCache

        cache = PlanCache()

        class _Plan:
            def __init__(self, lids, absent):
                self.referenced_lids = frozenset(lids)
                self.absent_labels = frozenset(absent)

        with cache._lock:
            cache._memo["p1"] = _Plan({0, 1}, ())
            cache._memo["p2"] = _Plan({2}, ())
            cache._memo["p3"] = _Plan({2}, {"zz"})
        assert cache.evict_stale(frozenset({1}), ()) == 1
        assert set(cache._memo) == {"p2", "p3"}
        assert cache.evict_stale(frozenset(), {"zz"}) == 1
        assert set(cache._memo) == {"p2"}
        assert cache.evict_stale(frozenset(), ()) == 0


class TestVersionAndLog:
    def test_ops_since_returns_contiguous_tail(self):
        g = small_graph("csr")
        cache = g.index_cache()
        g.add_edge(0, 3)
        g.add_edge(1, 4)
        g.remove_edge(0, 3)
        tail = cache.ops_since(1)
        assert [seq for seq, _ in tail] == [2, 3]
        assert tail[0][1] == ("add_edge", 1, 4)
        assert cache.ops_since(3) == ()

    def test_on_compaction_resets_log_and_epoch(self):
        g = small_graph("csr")
        cache = g.index_cache()
        g.add_edge(0, 3)
        epoch0 = cache.epoch
        g.compact()
        assert cache.epoch != epoch0
        assert cache.delta_seq == 0
        assert cache.ops_since(0) == ()
        assert cache.plan_cache.info()["size"] == 0

    def test_memo_keys_change_with_version(self):
        from repro.core.config import DSQLConfig
        from repro.core.dsql import DSQL
        from repro.graph.query_graph import QueryGraph

        g = small_graph("csr")
        session = DSQL(g, config=DSQLConfig(k=2))
        q = QueryGraph(["a", "b"], [(0, 1)])
        key0 = session.memo_key(q)
        g.add_edge(0, 3)
        key1 = session.memo_key(q)
        assert key0 != key1
        g.compact()
        assert session.memo_key(q) not in (key0, key1)
