"""Compiled query plans and the per-graph PlanCache."""

from __future__ import annotations

import pickle

import pytest

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.datasets.registry import make_dataset
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.candidates import CandidateIndex
from repro.indexes.graph_cache import GraphIndexCache
from repro.indexes.plans import PlanCache, compile_plan, plan_key
from repro.isomorphism.qsearch import connected_search_order
from repro.kernels import KERNEL_KINDS, SCAN
from repro.observability.metrics import MetricsRegistry
from repro.queries.generator import query_set
from repro.queries.ordering import selectivity_order


@pytest.fixture(scope="module")
def graph():
    return make_dataset("dblp", scale=0.001, seed=7)


@pytest.fixture(scope="module")
def queries(graph):
    return list(query_set(graph, 3, 4, seed=11))


def test_compile_plan_matches_seed_preprocessing(graph, queries):
    """Plan order/pools must equal what the engines compute per call."""
    cache = graph.index_cache()
    for query in queries:
        plan = compile_plan(query, cache)
        candidates = CandidateIndex(graph, query, cache=cache)
        assert list(plan.qlist) == selectivity_order(query, candidates)
        assert list(plan.order) == connected_search_order(query, list(plan.qlist))
        assert [list(p) for p in plan.pools] == [
            list(candidates.candidates(u)) for u in range(query.size)
        ]
        position = {u: i for i, u in enumerate(plan.order)}
        for depth, u in enumerate(plan.order):
            assert sorted(plan.backward[depth]) == sorted(
                w for w in query.neighbors(u) if position[w] < position[u]
            )
            assert plan.kernels[depth] in KERNEL_KINDS
        # The root depth has no matched neighbor: always a pool scan.
        assert plan.kernels[0] == SCAN


def test_plan_cache_hits_and_misses(graph, queries):
    cache = GraphIndexCache(graph)
    pc = cache.plan_cache
    p1 = pc.get_or_compile(queries[0], cache)
    p2 = pc.get_or_compile(queries[0], cache)
    assert p1 is p2
    assert pc.info() == {"hits": 1, "misses": 1, "size": 1}
    pc.get_or_compile(queries[1], cache)
    assert pc.info()["misses"] == 2


def test_plan_key_distinguishes_cache_epochs(graph, queries):
    c1, c2 = GraphIndexCache(graph), GraphIndexCache(graph)
    assert c1.epoch != c2.epoch
    assert plan_key(c1, queries[0], True, True) != plan_key(c2, queries[0], True, True)
    # Filter toggles are part of the key too.
    assert plan_key(c1, queries[0], True, True) != plan_key(c1, queries[0], False, True)


def test_plan_cache_lru_eviction(graph, queries):
    cache = graph.index_cache()
    pc = PlanCache(size=2)
    for query in queries[:3]:
        pc.get_or_compile(query, cache)
    assert pc.info()["size"] == 2
    # The oldest entry was evicted: asking for it again recompiles.
    pc.get_or_compile(queries[0], cache)
    assert pc.info()["misses"] == 4


def test_plan_cache_metrics_mirroring(graph, queries):
    cache = GraphIndexCache(graph)
    registry = MetricsRegistry()
    cache.attach_metrics(registry)
    pc = cache.plan_cache
    pc.get_or_compile(queries[0], cache)
    pc.get_or_compile(queries[0], cache)
    snap = registry.snapshot()
    assert snap["plan.cache.misses"] == 1
    assert snap["plan.cache.hits"] == 1


def test_plan_cache_pickle_roundtrip(graph, queries):
    cache = graph.index_cache()
    pc = PlanCache()
    plan = pc.get_or_compile(queries[0], cache)
    mask = plan.cand_mask(0)
    clone = pickle.loads(pickle.dumps(pc))
    replayed = clone.get_or_compile(queries[0], cache)
    assert replayed.key == plan.key
    assert clone.info()["hits"] == pc.info()["hits"] + 1
    # Lazy cand-mask memo is rebuilt, not shipped.
    assert replayed.cand_mask(0) == mask


def test_plan_cache_clear(graph, queries):
    cache = graph.index_cache()
    pc = PlanCache()
    pc.get_or_compile(queries[0], cache)
    pc.clear()
    assert pc.info()["size"] == 0


def test_session_shares_plan_cache_through_index_cache(graph, queries):
    config = DSQLConfig(k=2, node_budget=50_000)
    s1 = DSQL(graph, config=config)
    s2 = DSQL(graph, config=config)
    assert s1.index_cache.plan_cache is s2.index_cache.plan_cache
    before = s1.index_cache.plan_cache.info()["misses"]
    s1.query(queries[0])
    s2.query(queries[0])
    info = s1.index_cache.plan_cache.info()
    assert info["misses"] == before + 1  # second session hit the shared plan
    assert info["hits"] >= 1


def test_no_plan_cache_escape_hatch_recompiles(graph, queries):
    config = DSQLConfig(k=2, node_budget=50_000, plan_cache=False)
    session = DSQL(graph, config=config)
    before = session.index_cache.plan_cache.info()
    session.query(queries[0])
    session.query(queries[0])
    after = session.index_cache.plan_cache.info()
    assert (after["hits"], after["misses"]) == (before["hits"], before["misses"])


# ----------------------------------------------------------------------
# Lazy candidate set views
# ----------------------------------------------------------------------
def test_candidate_index_construction_builds_no_sets(graph, queries):
    ci = CandidateIndex(graph, queries[0])
    assert ci.set_views_built == 0
    ci.candidate_set(0)
    assert ci.set_views_built == 1
    ci.is_candidate(0, 0)
    assert ci.set_views_built == 1  # same node, memoized


def test_plan_driven_query_materializes_no_set_views(graph, queries, monkeypatch):
    """The kernel paths never touch the set views — pinned end to end."""
    import repro.core.dsql as dsql_mod

    built = []
    orig = dsql_mod.CandidateIndex

    def capture(*args, **kwargs):
        ci = orig(*args, **kwargs)
        built.append(ci)
        return ci

    monkeypatch.setattr(dsql_mod, "CandidateIndex", capture)
    config = DSQLConfig(k=4, node_budget=200_000)
    session = DSQL(graph, config=config)
    for query in queries:
        session.query(query)
    assert built and all(ci.set_views_built == 0 for ci in built)


def test_restricted_accepts_sorted_and_unordered_input():
    graph = LabeledGraph(["A", "A", "A", "B"], [(0, 3), (1, 3), (2, 3)])
    query = QueryGraph(["A", "B"], [(0, 1)])
    ci = CandidateIndex(graph, query)
    assert ci.restricted(0, [0, 2]) == [0, 2]
    assert ci.restricted(0, {2, 0}) == [0, 2]
    assert ci.set_views_built == 0


# ----------------------------------------------------------------------
# Disk-backed warm start: dump_specs / warm_from_specs
# ----------------------------------------------------------------------
class TestPlanSpecs:
    def test_dump_and_warm_round_trip(self, graph, queries):
        cache = graph.index_cache()
        pc = PlanCache()
        originals = [pc.get_or_compile(q, cache) for q in queries]
        specs = pc.dump_specs()
        assert len(specs) == len(queries)

        fresh_cache = GraphIndexCache(graph)
        fresh = fresh_cache.plan_cache
        assert fresh.warm_from_specs(specs, fresh_cache) == len(queries)
        assert fresh.info()["size"] == len(queries)
        # Warmed plans answer the original queries as cache *hits* with the
        # same structure the cold compile produced.
        for query, original in zip(queries, originals):
            hits = fresh.hits
            plan = fresh.get_or_compile(query, fresh_cache)
            assert fresh.hits == hits + 1
            assert list(plan.order) == list(original.order)
            assert [list(p) for p in plan.pools] == [list(p) for p in original.pools]
            assert list(plan.kernels) == list(original.kernels)

    def test_specs_are_json_safe(self, graph, queries):
        import json

        cache = graph.index_cache()
        pc = PlanCache()
        for q in queries:
            pc.get_or_compile(q, cache, use_compression=True)
        specs = json.loads(json.dumps(pc.dump_specs()))
        fresh_cache = GraphIndexCache(graph)
        warmed = fresh_cache.plan_cache.warm_from_specs(specs, fresh_cache)
        assert warmed == len(queries)
        # The compression toggle survived the round trip: warmed plans carry
        # class pools.
        plan = fresh_cache.plan_cache.get_or_compile(
            queries[0], fresh_cache, use_compression=True
        )
        assert fresh_cache.plan_cache.info()["hits"] == 1
        assert plan.class_pools is not None

    def test_specs_track_toggles_separately(self, graph, queries):
        cache = graph.index_cache()
        pc = PlanCache()
        pc.get_or_compile(queries[0], cache)
        pc.get_or_compile(queries[0], cache, use_compression=True)
        specs = pc.dump_specs()
        assert len(specs) == 2
        assert {s["use_compression"] for s in specs} == {False, True}

    def test_specs_pruned_with_lru_eviction(self, graph, queries):
        cache = graph.index_cache()
        pc = PlanCache(size=2)
        for q in queries[:3]:
            pc.get_or_compile(q, cache)
        assert len(pc.dump_specs()) == 2

    def test_specs_pruned_on_clear_and_evict_stale(self, graph, queries):
        cache = graph.index_cache()
        pc = PlanCache()
        plan = pc.get_or_compile(queries[0], cache)
        assert pc.evict_stale(plan.referenced_lids) == 1
        assert pc.dump_specs() == []
        pc.get_or_compile(queries[0], cache)
        pc.clear()
        assert pc.dump_specs() == []

    def test_bad_specs_are_skipped_not_fatal(self, graph, queries):
        cache = GraphIndexCache(graph)
        pc = cache.plan_cache
        bad = [
            {"labels": ["no-such-label"], "edges": []},
            {"edges": [[0, 1]]},  # missing labels entirely
            "not-a-dict",
        ]
        good_pc = PlanCache()
        good_pc.get_or_compile(queries[0], cache)
        warmed = pc.warm_from_specs(bad + good_pc.dump_specs(), cache)
        assert warmed >= 1
        assert pc.info()["size"] >= 1
