"""Unit tests for :mod:`repro.indexes.candidates`."""

from __future__ import annotations

import pytest

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.candidates import CandidateIndex, build_candidate_index

from tests.conftest import brute_force_embeddings


@pytest.fixture()
def setting():
    graph = LabeledGraph(
        ["a", "b", "c", "a", "b", "b"],
        [(0, 1), (1, 2), (3, 4), (0, 5), (5, 2)],
    )
    query = QueryGraph(["a", "b", "c"], [(0, 1), (1, 2)])
    return graph, query


class TestConstruction:
    def test_candidates_filtered(self, setting):
        graph, query = setting
        idx = CandidateIndex(graph, query)
        # Node 1 ("b", degree 2) needs degree >= 2 and NS >= {a, c}:
        # v1 (deg 2, NS {a,c}) and v5 (deg 2, NS {a,c}) qualify; v4 does not.
        assert set(idx.candidates(1)) == {1, 5}

    def test_label_only_when_filters_disabled(self, setting):
        graph, query = setting
        idx = CandidateIndex(
            graph, query, use_degree_filter=False, use_signature_filter=False
        )
        assert set(idx.candidates(1)) == {1, 4, 5}

    def test_sizes(self, setting):
        graph, query = setting
        idx = CandidateIndex(graph, query)
        assert idx.size(1) == len(idx.candidates(1))
        assert idx.sizes() == [idx.size(u) for u in range(query.size)]

    def test_build_helper(self, setting):
        graph, query = setting
        idx = build_candidate_index(graph, query)
        assert isinstance(idx, CandidateIndex)


class TestMembership:
    def test_is_candidate(self, setting):
        graph, query = setting
        idx = CandidateIndex(graph, query)
        assert idx.is_candidate(1, 1)
        assert not idx.is_candidate(1, 4)

    def test_discard(self, setting):
        graph, query = setting
        idx = CandidateIndex(graph, query)
        idx.discard(1, 1)
        assert not idx.is_candidate(1, 1)
        # The frozen list view keeps its order; only the set view changes.
        assert 1 in idx.candidates(1)

    def test_restricted(self, setting):
        graph, query = setting
        idx = CandidateIndex(graph, query)
        assert idx.restricted(1, {5, 99}) == [5]

    def test_any_empty_false(self, setting):
        graph, query = setting
        assert not CandidateIndex(graph, query).any_empty()

    def test_any_empty_true(self):
        graph = LabeledGraph(["a", "a"], [(0, 1)])
        query = QueryGraph(["a", "z"], [(0, 1)])
        assert CandidateIndex(graph, query).any_empty()

    def test_full_check_independent_of_discard(self, setting):
        graph, query = setting
        idx = CandidateIndex(graph, query)
        idx.discard(1, 1)
        assert idx.full_check(1, 1)


class TestCompleteness:
    def test_candidates_cover_all_embeddings(self, setting):
        """Filters are sound: every true embedding vertex is a candidate."""
        graph, query = setting
        idx = CandidateIndex(graph, query)
        for mapping in brute_force_embeddings(graph, query):
            for u, v in enumerate(mapping):
                assert idx.is_candidate(u, v), (u, v)

    def test_candidates_cover_embeddings_random(self):
        from tests.conftest import connected_query_from, random_labeled_graph

        graph = random_labeled_graph(30, 3, 0.2, seed=7)
        query = connected_query_from(graph, 3, seed=1)
        idx = CandidateIndex(graph, query)
        for mapping in brute_force_embeddings(graph, query):
            for u, v in enumerate(mapping):
                assert idx.is_candidate(u, v)
