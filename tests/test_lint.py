"""Lint gates: ruff over the source tree, plus a docs-snippet compile check."""

from __future__ import annotations

import py_compile
import shutil
import subprocess
import sys
from pathlib import Path
from typing import List

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks", "examples"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_sources_compile():
    """Cheap always-on stand-in for the lint gate: every file byte-compiles."""
    files = [str(p) for p in (REPO / "src").rglob("*.py")]
    files += [str(p) for p in (REPO / "benchmarks").glob("*.py")]
    files += [str(p) for p in (REPO / "examples").glob("*.py")]
    proc = subprocess.run(
        [sys.executable, "-m", "py_compile", *files],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr


# ----------------------------------------------------------------------
# Docs gate: every ```python block in the documentation must stay valid
# Python, so examples cannot rot silently when APIs move.
# ----------------------------------------------------------------------
DOC_FILES = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]


def extract_python_blocks(text: str) -> List[str]:
    """The contents of every ````` ```python ````` fenced block, in order."""
    blocks: List[str] = []
    current: List[str] = []
    in_block = False
    for line in text.splitlines():
        stripped = line.strip()
        if in_block:
            if stripped.startswith("```"):
                blocks.append("\n".join(current))
                current = []
                in_block = False
            else:
                current.append(line)
        elif stripped == "```python":
            in_block = True
    return blocks


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_doc_python_snippets_compile(doc: Path, tmp_path: Path):
    blocks = extract_python_blocks(doc.read_text(encoding="utf-8"))
    for i, block in enumerate(blocks):
        snippet = tmp_path / f"{doc.stem}_{i}.py"
        snippet.write_text(block + "\n", encoding="utf-8")
        try:
            py_compile.compile(str(snippet), doraise=True)
        except py_compile.PyCompileError as exc:
            raise AssertionError(
                f"{doc.name} python block #{i} does not compile:\n{block}\n{exc}"
            ) from None


# ----------------------------------------------------------------------
# Gate-coverage guards: the globs above are recursive/implicit, so a
# rename could silently drop a tree from the gates. Pin the trees the
# service PR added.
# ----------------------------------------------------------------------
def test_compile_gate_covers_service_package():
    service_files = sorted((REPO / "src" / "repro" / "service").rglob("*.py"))
    assert service_files, "service package missing from src/repro"
    names = {p.name for p in service_files}
    assert {"admission.py", "catalog.py", "client.py", "schemas.py", "server.py"} <= names
    gated = {str(p) for p in (REPO / "src").rglob("*.py")}
    assert all(str(p) in gated for p in service_files)


def test_docs_gate_covers_service_doc():
    service_doc = REPO / "docs" / "service.md"
    assert service_doc.exists(), "docs/service.md missing"
    assert service_doc in DOC_FILES
    # The doc must actually exercise the gate: at least one python block.
    assert extract_python_blocks(service_doc.read_text(encoding="utf-8"))


def test_compile_gate_covers_objectives_module():
    objectives = REPO / "src" / "repro" / "coverage" / "objectives.py"
    assert objectives.exists(), "coverage/objectives.py missing"
    gated = {str(p) for p in (REPO / "src").rglob("*.py")}
    assert str(objectives) in gated


def test_docs_gate_covers_objectives_doc():
    objectives_doc = REPO / "docs" / "objectives.md"
    assert objectives_doc.exists(), "docs/objectives.md missing"
    assert objectives_doc in DOC_FILES
    # The doc must actually exercise the gate: at least one python block.
    assert extract_python_blocks(objectives_doc.read_text(encoding="utf-8"))


def test_service_tests_collected_from_testpaths():
    tests_dir = REPO / "tests" / "service"
    assert (tests_dir / "__init__.py").exists()
    assert sorted(p.name for p in tests_dir.glob("test_*.py")) == [
        "test_accesslog.py",
        "test_admission.py",
        "test_catalog.py",
        "test_concurrency.py",
        "test_cost_admission.py",
        "test_multiworker.py",
        "test_mutation.py",
        "test_schemas.py",
        "test_server.py",
    ]


def test_compile_gate_covers_shared_memory_modules():
    modules = [
        REPO / "src" / "repro" / "graph" / "shared.py",
        REPO / "src" / "repro" / "parallel" / "pool.py",
        REPO / "src" / "repro" / "service" / "multiworker.py",
    ]
    gated = {str(p) for p in (REPO / "src").rglob("*.py")}
    for module in modules:
        assert module.exists(), f"{module} missing"
        assert str(module) in gated


def test_docs_gate_covers_parallel_doc():
    parallel_doc = REPO / "docs" / "parallel.md"
    assert parallel_doc.exists(), "docs/parallel.md missing"
    assert parallel_doc in DOC_FILES
    # The doc must actually exercise the gate: at least one python block.
    assert extract_python_blocks(parallel_doc.read_text(encoding="utf-8"))


def test_docs_gate_covers_mutation_doc():
    mutation_doc = REPO / "docs" / "mutation.md"
    assert mutation_doc.exists(), "docs/mutation.md missing"
    assert mutation_doc in DOC_FILES
    # The mutation contract ships runnable examples; the gate must see them.
    assert extract_python_blocks(mutation_doc.read_text(encoding="utf-8"))


def test_compile_gate_covers_cost_package():
    """The cost-estimation PR's tree stays under the compile gate."""
    cost_files = sorted((REPO / "src" / "repro" / "cost").rglob("*.py"))
    assert cost_files, "cost package missing from src/repro"
    names = {p.name for p in cost_files}
    assert {"__init__.py", "calibration.py", "estimator.py"} <= names
    gated = {str(p) for p in (REPO / "src").rglob("*.py")}
    assert all(str(p) in gated for p in cost_files)
    accesslog = REPO / "src" / "repro" / "service" / "accesslog.py"
    assert accesslog.exists(), "service/accesslog.py missing"
    assert str(accesslog) in gated


def test_docs_gate_covers_cost_doc():
    cost_doc = REPO / "docs" / "cost.md"
    assert cost_doc.exists(), "docs/cost.md missing"
    assert cost_doc in DOC_FILES
    # The doc must actually exercise the gate: at least one python block.
    assert extract_python_blocks(cost_doc.read_text(encoding="utf-8"))


def test_compile_gate_covers_mutation_surface():
    """The live-mutation PR's load-bearing modules stay under the compile
    gate (and exist — a rename must not silently drop the write path)."""
    modules = [
        REPO / "src" / "repro" / "graph" / "labeled_graph.py",
        REPO / "src" / "repro" / "graph" / "csr.py",
        REPO / "src" / "repro" / "indexes" / "graph_cache.py",
        REPO / "src" / "repro" / "indexes" / "plans.py",
    ]
    gated = {str(p) for p in (REPO / "src").rglob("*.py")}
    for module in modules:
        assert module.exists(), f"{module} missing"
        assert str(module) in gated


def test_compile_gate_covers_compression_surface():
    """The twin-compression PR's load-bearing modules stay under the
    compile gate, and its benchmark stays under the benchmarks glob."""
    modules = [
        REPO / "src" / "repro" / "isomorphism" / "compression.py",
        REPO / "src" / "repro" / "kernels" / "join.py",
        REPO / "src" / "repro" / "indexes" / "plans.py",
        REPO / "src" / "repro" / "indexes" / "graph_cache.py",
        REPO / "src" / "repro" / "datasets" / "synthetic.py",
    ]
    gated = {str(p) for p in (REPO / "src").rglob("*.py")}
    for module in modules:
        assert module.exists(), f"{module} missing"
        assert str(module) in gated
    bench = REPO / "benchmarks" / "bench_compression.py"
    assert bench.exists(), "benchmarks/bench_compression.py missing"
    assert str(bench) in {str(p) for p in (REPO / "benchmarks").glob("*.py")}


def test_docs_gate_covers_performance_doc():
    performance_doc = REPO / "docs" / "performance.md"
    assert performance_doc.exists(), "docs/performance.md missing"
    assert performance_doc in DOC_FILES
    # The doc must actually exercise the gate: at least one python block.
    assert extract_python_blocks(performance_doc.read_text(encoding="utf-8"))
