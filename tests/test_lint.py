"""Lint gates: ruff over the source tree, plus a docs-snippet compile check."""

from __future__ import annotations

import py_compile
import shutil
import subprocess
import sys
from pathlib import Path
from typing import List

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks", "examples"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_sources_compile():
    """Cheap always-on stand-in for the lint gate: every file byte-compiles."""
    files = [str(p) for p in (REPO / "src").rglob("*.py")]
    files += [str(p) for p in (REPO / "benchmarks").glob("*.py")]
    files += [str(p) for p in (REPO / "examples").glob("*.py")]
    proc = subprocess.run(
        [sys.executable, "-m", "py_compile", *files],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr


# ----------------------------------------------------------------------
# Docs gate: every ```python block in the documentation must stay valid
# Python, so examples cannot rot silently when APIs move.
# ----------------------------------------------------------------------
DOC_FILES = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]


def extract_python_blocks(text: str) -> List[str]:
    """The contents of every ````` ```python ````` fenced block, in order."""
    blocks: List[str] = []
    current: List[str] = []
    in_block = False
    for line in text.splitlines():
        stripped = line.strip()
        if in_block:
            if stripped.startswith("```"):
                blocks.append("\n".join(current))
                current = []
                in_block = False
            else:
                current.append(line)
        elif stripped == "```python":
            in_block = True
    return blocks


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_doc_python_snippets_compile(doc: Path, tmp_path: Path):
    blocks = extract_python_blocks(doc.read_text(encoding="utf-8"))
    for i, block in enumerate(blocks):
        snippet = tmp_path / f"{doc.stem}_{i}.py"
        snippet.write_text(block + "\n", encoding="utf-8")
        try:
            py_compile.compile(str(snippet), doraise=True)
        except py_compile.PyCompileError as exc:
            raise AssertionError(
                f"{doc.name} python block #{i} does not compile:\n{block}\n{exc}"
            ) from None
