"""Lint gate: ruff over the source tree (skipped when ruff is unavailable)."""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks", "examples"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_sources_compile():
    """Cheap always-on stand-in for the lint gate: every file byte-compiles."""
    files = [str(p) for p in (REPO / "src").rglob("*.py")]
    files += [str(p) for p in (REPO / "benchmarks").glob("*.py")]
    files += [str(p) for p in (REPO / "examples").glob("*.py")]
    proc = subprocess.run(
        [sys.executable, "-m", "py_compile", *files],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
