"""Unit tests for :mod:`repro.graph.builder`."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder, merge_vertex_maps, relabel
from repro.graph.labeled_graph import LabeledGraph


class TestGraphBuilder:
    def test_add_vertex_returns_sequential_ids(self):
        b = GraphBuilder()
        assert b.add_vertex("a") == 0
        assert b.add_vertex("b") == 1
        assert b.num_vertices == 2

    def test_add_vertices_bulk(self):
        b = GraphBuilder()
        ids = b.add_vertices(["a", "b", "c"])
        assert ids == [0, 1, 2]

    def test_add_edge_and_build(self):
        b = GraphBuilder()
        b.add_vertices(["a", "b"])
        b.add_edge(0, 1)
        g = b.build()
        assert g.num_edges == 1
        assert g.has_edge(0, 1)

    def test_add_edge_idempotent(self):
        b = GraphBuilder()
        b.add_vertices(["a", "b"])
        b.add_edge(0, 1)
        b.add_edge(1, 0)
        assert b.num_edges == 1

    def test_add_edges_bulk(self):
        b = GraphBuilder()
        b.add_vertices(["a", "b", "c"])
        b.add_edges([(0, 1), (1, 2)])
        assert b.num_edges == 2

    def test_has_edge(self):
        b = GraphBuilder()
        b.add_vertices(["a", "b"])
        b.add_edge(0, 1)
        assert b.has_edge(1, 0)
        assert not b.has_edge(0, 0)

    def test_self_loop_rejected(self):
        b = GraphBuilder()
        b.add_vertex("a")
        with pytest.raises(GraphError):
            b.add_edge(0, 0)

    def test_unknown_vertex_rejected(self):
        b = GraphBuilder()
        b.add_vertex("a")
        with pytest.raises(GraphError):
            b.add_edge(0, 7)

    def test_set_label(self):
        b = GraphBuilder()
        b.add_vertex("a")
        b.set_label(0, "z")
        assert b.build().label(0) == "z"

    def test_set_label_unknown_vertex(self):
        b = GraphBuilder()
        with pytest.raises(GraphError):
            b.set_label(0, "z")

    def test_build_name(self):
        b = GraphBuilder()
        b.add_vertex("a")
        assert b.build(name="mine").name == "mine"

    def test_build_is_independent_of_builder(self):
        b = GraphBuilder()
        b.add_vertices(["a", "b"])
        g = b.build()
        b.add_vertex("c")
        b.add_edge(0, 1)
        assert g.num_vertices == 2
        assert g.num_edges == 0


class TestRelabel:
    def test_relabel_topology_preserved(self):
        g = LabeledGraph(["a", "b"], [(0, 1)])
        g2 = relabel(g, ["x", "y"])
        assert list(g2.labels) == ["x", "y"]
        assert g2.has_edge(0, 1)
        assert g2.num_edges == g.num_edges

    def test_relabel_wrong_length(self):
        g = LabeledGraph(["a", "b"], [(0, 1)])
        with pytest.raises(GraphError, match="entries"):
            relabel(g, ["x"])

    def test_relabel_keeps_name(self):
        g = LabeledGraph(["a"], name="orig")
        assert relabel(g, ["x"]).name == "orig"
        assert relabel(g, ["x"], name="new").name == "new"


class TestMergeVertexMaps:
    def test_merge_disjoint(self):
        merged = merge_vertex_maps([{1: 10}, {2: 20}])
        assert merged == {1: 10, 2: 20}

    def test_merge_overlap_rejected(self):
        with pytest.raises(GraphError, match="overlap"):
            merge_vertex_maps([{1: 10}, {1: 11}])

    def test_merge_empty(self):
        assert merge_vertex_maps([]) == {}
