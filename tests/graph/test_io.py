"""Unit tests for :mod:`repro.graph.io`."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph.io import (
    dump_edge_list,
    dump_json,
    load_edge_list,
    load_json,
    load_query,
)
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph


@pytest.fixture()
def graph():
    return LabeledGraph(["a", "b", "b"], [(0, 1), (1, 2)], name="tiny")


class TestEdgeListFormat:
    def test_roundtrip(self, graph, tmp_path):
        path = tmp_path / "g.lg"
        dump_edge_list(graph, path)
        loaded = load_edge_list(path)
        assert loaded.num_vertices == 3
        assert list(loaded.labels) == ["a", "b", "b"]
        assert set(loaded.edges()) == {(0, 1), (1, 2)}

    def test_header_mismatch_vertices(self, tmp_path):
        path = tmp_path / "bad.lg"
        path.write_text("t 5 1\nv 0 a\nv 1 b\ne 0 1\n")
        with pytest.raises(GraphError, match="declares 5 vertices"):
            load_edge_list(path)

    def test_header_mismatch_edges(self, tmp_path):
        path = tmp_path / "bad.lg"
        path.write_text("t 2 9\nv 0 a\nv 1 b\ne 0 1\n")
        with pytest.raises(GraphError, match="declares 9 edges"):
            load_edge_list(path)

    def test_non_dense_ids(self, tmp_path):
        path = tmp_path / "bad.lg"
        path.write_text("v 0 a\nv 2 b\n")
        with pytest.raises(GraphError, match="dense"):
            load_edge_list(path)

    def test_unknown_record(self, tmp_path):
        path = tmp_path / "bad.lg"
        path.write_text("x 1 2\n")
        with pytest.raises(GraphError, match="unknown record"):
            load_edge_list(path)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.lg"
        path.write_text("# comment\n\nv 0 a\nv 1 a\ne 0 1\n")
        g = load_edge_list(path)
        assert g.num_vertices == 2 and g.num_edges == 1

    def test_name_defaults_to_stem(self, graph, tmp_path):
        path = tmp_path / "mygraph.lg"
        dump_edge_list(graph, path)
        assert load_edge_list(path).name == "mygraph"


class TestJsonFormat:
    def test_roundtrip(self, graph, tmp_path):
        path = tmp_path / "g.json"
        dump_json(graph, path)
        loaded = load_json(path)
        assert list(loaded.labels) == list(graph.labels)
        assert set(loaded.edges()) == set(graph.edges())
        assert loaded.name == "tiny"

    def test_malformed_json_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nope": 1}')
        with pytest.raises(GraphError, match="not a graph JSON"):
            load_json(path)


class TestLoadQuery:
    def test_load_query_edge_list(self, tmp_path):
        path = tmp_path / "q.lg"
        dump_edge_list(LabeledGraph(["a", "b"], [(0, 1)]), path)
        q = load_query(path)
        assert isinstance(q, QueryGraph)

    def test_load_query_json(self, tmp_path):
        path = tmp_path / "q.json"
        dump_json(LabeledGraph(["a", "b"], [(0, 1)]), path)
        assert isinstance(load_query(path), QueryGraph)

    def test_load_query_rejects_disconnected(self, tmp_path):
        path = tmp_path / "q.json"
        dump_json(LabeledGraph(["a", "b"], []), path)
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            load_query(path)
