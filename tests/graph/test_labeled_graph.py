"""Unit tests for :mod:`repro.graph.labeled_graph`."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph.labeled_graph import LabeledGraph


@pytest.fixture()
def small():
    return LabeledGraph(["a", "b", "b", "c"], [(0, 1), (1, 2), (2, 3), (0, 3)])


class TestConstruction:
    def test_counts(self, small):
        assert small.num_vertices == 4
        assert small.num_edges == 4

    def test_empty_graph(self):
        g = LabeledGraph([])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_no_edges(self):
        g = LabeledGraph(["a", "b"])
        assert g.num_edges == 0
        assert g.degree(0) == 0

    def test_duplicate_edges_collapse(self):
        g = LabeledGraph(["a", "b"], [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            LabeledGraph(["a"], [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError, match="outside"):
            LabeledGraph(["a", "b"], [(0, 5)])

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphError):
            LabeledGraph(["a", "b"], [(-1, 0)])

    def test_name(self):
        assert LabeledGraph(["a"], name="g").name == "g"


class TestAccessors:
    def test_vertices_range(self, small):
        assert list(small.vertices()) == [0, 1, 2, 3]

    def test_edges_each_once_ordered(self, small):
        edges = list(small.edges())
        assert len(edges) == 4
        assert all(u < v for u, v in edges)
        assert set(edges) == {(0, 1), (1, 2), (2, 3), (0, 3)}

    def test_label(self, small):
        assert small.label(0) == "a"
        assert small.label(2) == "b"

    def test_neighbors_sorted_tuple(self, small):
        assert small.neighbors(1) == (0, 2)
        assert all(isinstance(w, int) for w in small.neighbors(1))

    def test_degree(self, small):
        assert [small.degree(v) for v in small.vertices()] == [2, 2, 2, 2]

    def test_has_edge_symmetric(self, small):
        assert small.has_edge(0, 1)
        assert small.has_edge(1, 0)
        assert not small.has_edge(0, 2)

    def test_contains(self, small):
        assert 0 in small
        assert 3 in small
        assert 4 not in small
        assert "x" not in small

    def test_len(self, small):
        assert len(small) == 4


class TestLabelIndex:
    def test_label_set(self, small):
        assert small.label_set() == {"a", "b", "c"}

    def test_label_index_buckets(self, small):
        idx = small.label_index()
        assert idx["a"] == (0,)
        assert idx["b"] == (1, 2)
        assert idx["c"] == (3,)

    def test_vertices_with_label_missing(self, small):
        assert small.vertices_with_label("zzz") == ()

    def test_label_index_cached(self, small):
        assert small.label_index() is small.label_index()


class TestSignatures:
    def test_signature_contents(self, small):
        assert small.neighborhood_signature(0) == frozenset({"b", "c"})
        assert small.neighborhood_signature(1) == frozenset({"a", "b"})

    def test_signature_isolated(self):
        g = LabeledGraph(["a", "b"], [])
        assert g.neighborhood_signature(0) == frozenset()

    def test_signature_stable(self, small):
        assert small.neighborhood_signature(2) == small.neighborhood_signature(2)


class TestDerivedStats:
    def test_average_degree(self, small):
        assert small.average_degree() == pytest.approx(2.0)

    def test_average_degree_empty(self):
        assert LabeledGraph([]).average_degree() == 0.0

    def test_degree_sequence(self, small):
        assert small.degree_sequence() == [2, 2, 2, 2]


class TestStructure:
    def test_is_connected_true(self, small):
        assert small.is_connected()

    def test_is_connected_false(self):
        g = LabeledGraph(["a", "b", "c"], [(0, 1)])
        assert not g.is_connected()

    def test_empty_is_connected(self):
        assert LabeledGraph([]).is_connected()

    def test_components(self):
        g = LabeledGraph(["a"] * 5, [(0, 1), (2, 3)])
        comps = g.connected_components()
        assert comps == [[0, 1], [2, 3], [4]]

    def test_induced_subgraph_labels_and_edges(self, small):
        sub = small.induced_subgraph([0, 1, 3])
        assert list(sub.labels) == ["a", "b", "c"]
        assert set(sub.edges()) == {(0, 1), (0, 2)}

    def test_induced_subgraph_dedups_input(self, small):
        sub = small.induced_subgraph([1, 1, 2])
        assert sub.num_vertices == 2
        assert set(sub.edges()) == {(0, 1)}

    def test_induced_subgraph_propagates_name(self):
        g = LabeledGraph(["a", "b"], [(0, 1)], name="parent")
        assert g.induced_subgraph([0, 1]).name == "parent/induced"

    def test_induced_subgraph_unnamed_stays_unnamed(self, small):
        assert small.induced_subgraph([0, 1]).name == ""
