"""Determinism regression tests.

Every iteration order in the graph layer is sorted by construction
(``neighbors`` tuples, ``edges`` lexicographic), so two independent builds of
the same instance must produce *byte-identical* serialized results. This is
the property that makes experiment reports reproducible run-to-run.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.datasets.registry import make_dataset
from repro.graph.csr import BACKEND_NAMES
from repro.graph.labeled_graph import LabeledGraph
from repro.queries.generator import query_set

LABELS = ["a", "b", "b", "a", "c", "b"]
EDGES = [(5, 0), (1, 2), (0, 1), (3, 1), (4, 3), (2, 0), (5, 2)]


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_iteration_orders_sorted(backend):
    g = LabeledGraph(LABELS, EDGES, backend=backend)
    for v in g.vertices():
        nbrs = g.neighbors(v)
        assert list(nbrs) == sorted(nbrs)
    edges = list(g.edges())
    assert edges == sorted(edges)
    assert all(u < v for u, v in edges)


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_iteration_independent_of_input_order(backend):
    g1 = LabeledGraph(LABELS, EDGES, backend=backend)
    g2 = LabeledGraph(LABELS, list(reversed(EDGES)), backend=backend)
    assert list(g1.edges()) == list(g2.edges())
    for v in g1.vertices():
        assert g1.neighbors(v) == g2.neighbors(v)


def _serialized_batch_report(seed: int) -> bytes:
    """Build graph + queries from scratch and serialize the full results."""
    graph = make_dataset("dblp", scale=0.002, seed=seed)
    queries = query_set(graph, 3, 4, seed=seed + 1)
    session = DSQL(graph, config=DSQLConfig(k=4, node_budget=200_000))
    payload = [
        {
            "embeddings": [list(e) for e in r.embeddings],
            "coverage": r.coverage,
            "optimal": r.optimal,
            "reason": r.optimal_reason,
            "level": r.level,
        }
        for r in (session.query(q) for q in queries)
    ]
    return json.dumps(payload, sort_keys=True).encode()


def test_reports_byte_identical_across_builds():
    assert _serialized_batch_report(seed=5) == _serialized_batch_report(seed=5)


def test_embeddings_are_plain_ints():
    """numpy scalars must never leak into results (json.dumps would fail)."""
    graph = LabeledGraph(LABELS, EDGES)
    (query,) = query_set(graph, 2, 1, seed=0)
    result = DSQL(graph, k=3).query(query)
    for emb in result.embeddings:
        assert all(type(v) is int for v in emb)
    json.dumps([list(e) for e in result.embeddings])  # must not raise
