"""Unit tests for :mod:`repro.graph.interop` (networkx bridge)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.graph.interop import (
    from_networkx,
    query_from_networkx,
    to_networkx,
    translate_embedding,
)
from repro.graph.labeled_graph import LabeledGraph


def sample_nx():
    g = nx.Graph()
    g.add_node("alice", label="a")
    g.add_node("bob", label="b")
    g.add_node("carol", label="b")
    g.add_edge("alice", "bob")
    g.add_edge("bob", "carol")
    return g


class TestFromNetworkx:
    def test_basic_conversion(self):
        graph, node_to_id = from_networkx(sample_nx())
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
        assert graph.label(node_to_id["alice"]) == "a"
        assert graph.has_edge(node_to_id["alice"], node_to_id["bob"])

    def test_missing_label_raises(self):
        g = nx.Graph()
        g.add_node(1)
        with pytest.raises(GraphError, match="no 'label' attribute"):
            from_networkx(g)

    def test_default_label(self):
        g = nx.Graph()
        g.add_node(1)
        graph, _ = from_networkx(g, default_label="x")
        assert graph.label(0) == "x"

    def test_custom_attribute(self):
        g = nx.Graph()
        g.add_node(1, kind="z")
        graph, _ = from_networkx(g, label_attribute="kind")
        assert graph.label(0) == "z"

    def test_directed_rejected(self):
        with pytest.raises(GraphError, match="undirected"):
            from_networkx(nx.DiGraph())

    def test_self_loop_dropped_or_strict(self):
        g = nx.Graph()
        g.add_node(1, label="a")
        g.add_edge(1, 1)
        graph, _ = from_networkx(g)
        assert graph.num_edges == 0
        with pytest.raises(GraphError, match="self-loop"):
            from_networkx(g, strict=True)


class TestQueryFromNetworkx:
    def test_valid_query(self):
        query, _ = query_from_networkx(sample_nx())
        assert query.size == 3

    def test_disconnected_rejected(self):
        g = nx.Graph()
        g.add_node(1, label="a")
        g.add_node(2, label="b")
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            query_from_networkx(g)


class TestToNetworkx:
    def test_roundtrip(self):
        original = LabeledGraph(["a", "b", "b"], [(0, 1), (1, 2)], name="g")
        nxg = to_networkx(original)
        back, node_to_id = from_networkx(nxg)
        assert list(back.labels) == list(original.labels)
        assert set(back.edges()) == set(original.edges())

    def test_label_attribute(self):
        nxg = to_networkx(LabeledGraph(["z"]), label_attribute="kind")
        assert nxg.nodes[0]["kind"] == "z"


class TestEndToEnd:
    def test_diversified_search_through_networkx(self):
        """A networkx user's full path: convert, query, translate back."""
        from repro import diversified_search

        g = nx.Graph()
        people = [("pm1", "a"), ("pm2", "a"), ("dev1", "b"), ("dev2", "b")]
        for node, label in people:
            g.add_node(node, label=label)
        g.add_edge("pm1", "dev1")
        g.add_edge("pm2", "dev2")

        q = nx.Graph()
        q.add_node("boss", label="a")
        q.add_node("worker", label="b")
        q.add_edge("boss", "worker")

        graph, gmap = from_networkx(g)
        query, _ = query_from_networkx(q)
        result = diversified_search(graph, query, k=2)
        assert result.coverage == 4
        names = {translate_embedding(emb, gmap) for emb in result.embeddings}
        assert names == {("pm1", "dev1"), ("pm2", "dev2")}
