"""Unit tests for the live-mutation surface of both graph backends.

The contract under test (docs/mutation.md): ``add_vertex`` / ``add_edge``
/ ``remove_edge`` mutate the live views in place, duplicate adds and
absent removes are no-ops, malformed ops reject *before* anything is
applied (a failed batch leaves the graph untouched), and ``compact()``
merges the CSR overlay back into pure sorted arrays without changing any
observable topology.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.labeled_graph import LabeledGraph, MutationSummary

BACKENDS = ("csr", "set")


def small_graph(backend: str) -> LabeledGraph:
    return LabeledGraph(
        ["a", "b", "b", "c", "a"],
        [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)],
        backend=backend,
    )


def assert_topology_equal(g: LabeledGraph, h: LabeledGraph) -> None:
    assert g.num_vertices == h.num_vertices
    assert g.num_edges == h.num_edges
    assert list(g.labels) == list(h.labels)
    assert sorted(g.edges()) == sorted(h.edges())
    for v in range(g.num_vertices):
        assert g.neighbors(v) == h.neighbors(v)
        assert g.degree(v) == h.degree(v)


@pytest.mark.parametrize("backend", BACKENDS)
class TestEdgeMutations:
    def test_add_edge_updates_all_views(self, backend):
        g = small_graph(backend)
        assert g.add_edge(0, 2) is True
        assert g.has_edge(0, 2) and g.has_edge(2, 0)
        assert g.num_edges == 6
        assert g.neighbors(0) == (1, 2, 4)  # stays sorted
        assert g.degree(0) == 3 and g.degree(2) == 3
        assert int(g.backend.degree_array[0]) == 3

    def test_duplicate_add_is_noop(self, backend):
        g = small_graph(backend)
        assert g.add_edge(0, 1) is False
        assert g.add_edge(1, 0) is False
        assert g.num_edges == 5

    def test_remove_edge_updates_all_views(self, backend):
        g = small_graph(backend)
        assert g.remove_edge(1, 2) is True
        assert not g.has_edge(1, 2) and not g.has_edge(2, 1)
        assert g.num_edges == 4
        assert g.neighbors(1) == (0,)
        assert g.degree(2) == 1

    def test_absent_remove_is_noop(self, backend):
        g = small_graph(backend)
        assert g.remove_edge(0, 2) is False
        assert g.num_edges == 5

    def test_self_loop_and_range_reject(self, backend):
        g = small_graph(backend)
        with pytest.raises(GraphError):
            g.add_edge(1, 1)
        with pytest.raises(GraphError):
            g.add_edge(0, 99)
        with pytest.raises(GraphError):
            g.remove_edge(-1, 0)
        assert g.num_edges == 5


@pytest.mark.parametrize("backend", BACKENDS)
class TestAddVertex:
    def test_add_vertex_returns_new_id(self, backend):
        g = small_graph(backend)
        v = g.add_vertex("z")
        assert v == 5
        assert g.num_vertices == 6
        assert g.label(v) == "z"
        assert g.degree(v) == 0 and g.neighbors(v) == ()
        assert g.add_edge(v, 0) is True
        assert g.neighbors(v) == (0,)

    def test_label_interning_is_append_only(self, backend):
        g = small_graph(backend)
        table_before = list(g.backend.label_table)
        g.add_vertex("a")  # existing label: no table growth
        assert list(g.backend.label_table) == table_before
        g.add_vertex("z")  # new label appended, old ids untouched
        assert g.backend.label_table[: len(table_before)] == table_before
        assert g.backend.label_table[-1] == "z"


@pytest.mark.parametrize("backend", BACKENDS)
class TestBatchMutate:
    def test_batch_applies_in_order(self, backend):
        g = small_graph(backend)
        summary = g.mutate(
            [
                ("add_vertex", "z"),
                ("add_edge", 5, 0),
                ("remove_edge", 0, 1),
                ("add_edge", 0, 1),  # re-add: applied again
                ("add_edge", 0, 1),  # duplicate: skipped
            ]
        )
        assert isinstance(summary, MutationSummary)
        assert summary.applied == 4
        assert g.has_edge(5, 0) and g.has_edge(0, 1)

    def test_invalid_batch_is_atomic(self, backend):
        g = small_graph(backend)
        reference = small_graph(backend)
        for bad in (
            [("add_edge", 0, 1), ("add_edge", 3, 3)],  # self-loop later
            [("remove_edge", 0, 1), ("add_edge", 0, 99)],  # out of range
            [("add_edge", 0, 1), ("frobnicate", 1)],  # unknown kind
            [("add_edge", 0)],  # malformed arity
            [("add_edge", 0, "x")],  # non-int endpoint
        ):
            with pytest.raises(GraphError):
                g.mutate(bad)
            assert_topology_equal(g, reference)

    def test_batch_bounds_account_for_added_vertices(self, backend):
        g = small_graph(backend)
        summary = g.mutate([("add_vertex", "z"), ("add_edge", 5, 1)])
        assert summary.applied == 2
        assert g.has_edge(5, 1)


class TestCSROverlayAndCompaction:
    def test_overlay_tracks_touched_and_delta(self):
        g = small_graph("csr")
        b = g.backend
        assert b.delta_size == 0 and not b.touched_vertices
        g.add_edge(0, 2)
        assert b.delta_size == 1
        assert b.touched_vertices == {0, 2}
        # Untouched rows still serve from the frozen base arrays.
        base = b.neighbors_array(3)
        assert isinstance(base, np.ndarray)
        assert tuple(b.neighbors_array(0)) == (1, 2, 4)

    def test_compact_restores_pure_arrays(self):
        g = small_graph("csr")
        rng = random.Random(5)
        for _ in range(30):
            u, v = rng.randrange(5), rng.randrange(5)
            if u == v:
                continue
            (g.add_edge if rng.random() < 0.6 else g.remove_edge)(u, v)
        g.add_vertex("z")
        g.add_edge(5, 0)
        snapshot = LabeledGraph(list(g.labels), list(g.edges()), backend="csr")
        g.compact()
        b = g.backend
        assert b.delta_size == 0 and not b.touched_vertices
        assert b.indptr.shape[0] == g.num_vertices + 1
        assert b.indices.shape[0] == 2 * g.num_edges
        assert_topology_equal(g, snapshot)
        # searchsorted membership works against the rebuilt arrays
        for u, v in g.edges():
            assert b.has_edge_searchsorted(u, v)

    def test_mutate_auto_compacts_at_threshold(self):
        g = small_graph("csr")
        ops = [("add_vertex", "z")] + [("add_edge", 5, t) for t in range(4)]
        summary = g.mutate(ops, compaction_threshold=3)
        assert summary.compacted is True
        assert g.backend.delta_size == 0

    def test_set_backend_compact_is_cheap_reset(self):
        g = small_graph("set")
        g.add_edge(0, 2)
        assert g.backend.delta_size == 1
        g.compact()
        assert g.backend.delta_size == 0
        assert g.has_edge(0, 2)


@pytest.mark.parametrize("backend", BACKENDS)
class TestVersioning:
    def test_version_is_none_before_cache(self, backend):
        g = small_graph(backend)
        assert g.version is None
        g.add_edge(0, 2)  # mutating without a cache is fine
        assert g.version is None

    def test_delta_bumps_seq_compaction_bumps_epoch(self, backend):
        g = small_graph(backend)
        cache = g.index_cache()
        epoch0 = cache.epoch
        assert g.version == (epoch0, 0)
        g.add_edge(0, 2)
        g.remove_edge(0, 2)
        assert g.version == (epoch0, 2)
        g.compact()
        epoch1, seq = g.version
        assert epoch1 != epoch0 and seq == 0

    def test_noop_does_not_consume_a_delta(self, backend):
        g = small_graph(backend)
        g.index_cache()
        g.add_edge(0, 1)  # already present
        g.remove_edge(0, 2)  # already absent
        assert g.version[1] == 0


class TestReplay:
    def test_replay_converges_twin_graph(self):
        g = small_graph("csr")
        twin = small_graph("csr")
        cache = g.index_cache()
        twin.index_cache()
        g.mutate([("add_vertex", "z"), ("add_edge", 5, 0), ("remove_edge", 1, 2)])
        twin.replay(cache.ops_since(0))
        assert_topology_equal(g, twin)
        # Epochs are globally unique per cache instance (the pool's sync
        # protocol numbers workers in parent terms for exactly this
        # reason); only the delta_seq converges.
        assert twin.version[1] == g.version[1]

    def test_replay_gap_raises(self):
        g = small_graph("csr")
        cache = g.index_cache()
        g.add_edge(0, 2)
        g.add_edge(0, 3)
        twin = small_graph("csr")
        twin.index_cache()
        tail = cache.ops_since(1)  # starts at seq 2: a gap for the fresh twin
        with pytest.raises(GraphError, match="gap"):
            twin.replay(tail)
