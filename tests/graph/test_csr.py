"""Unit tests for the storage-backend seam (repro.graph.csr)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.csr import (
    BACKEND_NAMES,
    CSRBackend,
    SetBackend,
    default_backend,
    intern_labels,
    make_backend,
    normalize_edges,
    resolve_backend_name,
    set_default_backend,
)
from repro.graph.labeled_graph import LabeledGraph

LABELS = ["a", "b", "b", "a", "c"]
EDGES = [(0, 1), (1, 2), (2, 0), (3, 1), (1, 0), (4, 3)]  # (1, 0) duplicates (0, 1)


@pytest.fixture(params=BACKEND_NAMES)
def backend(request):
    return make_backend(request.param, LABELS, EDGES)


# ----------------------------------------------------------------------
# normalize_edges / intern_labels
# ----------------------------------------------------------------------
def test_normalize_edges_dedups_and_sorts():
    assert normalize_edges(5, EDGES) == [(0, 1), (0, 2), (1, 2), (1, 3), (3, 4)]


def test_normalize_edges_rejects_out_of_range():
    with pytest.raises(GraphError, match=r"outside \[0, 3\)"):
        normalize_edges(3, [(0, 3)])


def test_normalize_edges_rejects_self_loop():
    with pytest.raises(GraphError, match="self-loop"):
        normalize_edges(3, [(1, 1)])


def test_intern_labels_first_appearance_order():
    table, to_id, ids = intern_labels(LABELS)
    assert table == ["a", "b", "c"]
    assert to_id == {"a": 0, "b": 1, "c": 2}
    assert ids == [0, 1, 1, 0, 2]


# ----------------------------------------------------------------------
# Shared backend semantics
# ----------------------------------------------------------------------
def test_basic_accessors(backend):
    assert backend.num_vertices == 5
    assert backend.num_edges == 5
    assert backend.label(2) == "b"
    assert backend.degree(1) == 3
    assert backend.degree_sequence() == [2, 3, 2, 2, 1]


def test_neighbors_sorted_plain_ints(backend):
    nbrs = backend.neighbors(1)
    assert nbrs == (0, 2, 3)
    assert all(type(v) is int for v in nbrs)


def test_edges_sorted_once_each(backend):
    assert list(backend.edges()) == [(0, 1), (0, 2), (1, 2), (1, 3), (3, 4)]


def test_has_edge_symmetric(backend):
    assert backend.has_edge(0, 1) and backend.has_edge(1, 0)
    assert not backend.has_edge(0, 4)
    assert not backend.has_edge(0, 3)


def test_label_interning(backend):
    assert backend.label_table == ["a", "b", "c"]
    assert backend.label_to_id == {"a": 0, "b": 1, "c": 2}
    assert list(backend.label_ids) == [0, 1, 1, 0, 2]
    assert list(backend.degree_array) == [2, 3, 2, 2, 1]


# ----------------------------------------------------------------------
# CSR specifics
# ----------------------------------------------------------------------
def test_csr_arrays_consistent():
    b = CSRBackend(LABELS, EDGES)
    assert list(b.indptr) == [0, 2, 5, 7, 9, 10]
    # Each row is the sorted neighbor list.
    for v in range(5):
        row = b.indices[b.indptr[v] : b.indptr[v + 1]]
        assert list(row) == list(b.neighbors(v))
        assert list(row) == sorted(row)


def test_csr_neighbors_array_zero_copy():
    b = CSRBackend(LABELS, EDGES)
    row = b.neighbors_array(1)
    assert row.base is b.indices
    assert list(row) == [0, 2, 3]


def test_csr_scalar_probes_agree():
    b = CSRBackend(LABELS, EDGES)
    for u in range(5):
        for v in range(5):
            assert b.has_edge(u, v) == b.has_edge_searchsorted(u, v)


def test_csr_has_edges_vectorized():
    b = CSRBackend(LABELS, EDGES)
    targets = np.array([0, 1, 2, 3, 4])
    assert list(b.has_edges(1, targets)) == [True, False, True, True, False]
    # Isolated row: all-false without error.
    iso = CSRBackend(["x", "y"], [])
    assert list(iso.has_edges(0, targets[:2])) == [False, False]


def test_empty_graph():
    for name in BACKEND_NAMES:
        b = make_backend(name, [])
        assert b.num_vertices == 0 and b.num_edges == 0
        assert list(b.edges()) == []
        assert list(b.degree_array) == []


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
def test_default_backend_is_csr(monkeypatch):
    monkeypatch.delenv("REPRO_GRAPH_BACKEND", raising=False)
    set_default_backend(None)
    assert default_backend() == "csr"
    assert LabeledGraph(["a"]).backend_name == "csr"


def test_set_default_backend(monkeypatch):
    monkeypatch.delenv("REPRO_GRAPH_BACKEND", raising=False)
    set_default_backend("set")
    try:
        assert default_backend() == "set"
        assert LabeledGraph(["a"]).backend_name == "set"
    finally:
        set_default_backend(None)


def test_env_var_backend(monkeypatch):
    set_default_backend(None)
    monkeypatch.setenv("REPRO_GRAPH_BACKEND", "set")
    assert default_backend() == "set"
    monkeypatch.setenv("REPRO_GRAPH_BACKEND", "bogus")
    with pytest.raises(GraphError, match="REPRO_GRAPH_BACKEND"):
        default_backend()


def test_resolve_backend_name_validates():
    assert resolve_backend_name("set") == "set"
    with pytest.raises(GraphError, match="unknown graph backend"):
        resolve_backend_name("adjacency")
    with pytest.raises(GraphError):
        set_default_backend("adjacency")


def test_with_backend_round_trip():
    g = LabeledGraph(LABELS, EDGES, name="toy", backend="csr")
    h = g.with_backend("set")
    assert h.backend_name == "set"
    assert h.name == "toy"
    assert list(h.edges()) == list(g.edges())
    assert [h.label(v) for v in h.vertices()] == [g.label(v) for v in g.vertices()]
    assert isinstance(g.backend, CSRBackend)
    assert isinstance(h.backend, SetBackend)
