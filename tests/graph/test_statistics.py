"""Unit tests for :mod:`repro.graph.statistics`."""

from __future__ import annotations

import pytest

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.statistics import (
    compute_statistics,
    degree_histogram,
    label_histogram,
    label_skew,
)


@pytest.fixture()
def graph():
    return LabeledGraph(["a", "a", "a", "b", "c"], [(0, 1), (0, 2), (0, 3), (3, 4)])


class TestComputeStatistics:
    def test_counts(self, graph):
        s = compute_statistics(graph)
        assert s.num_vertices == 5
        assert s.num_edges == 4
        assert s.num_labels == 3

    def test_degrees(self, graph):
        s = compute_statistics(graph)
        assert s.average_degree == pytest.approx(8 / 5)
        assert s.max_degree == 3

    def test_label_density(self, graph):
        assert compute_statistics(graph).label_density == pytest.approx(3 / 5)

    def test_empty_graph(self):
        s = compute_statistics(LabeledGraph([]))
        assert s.num_vertices == 0
        assert s.max_degree == 0
        assert s.label_density == 0.0

    def test_row_renders(self, graph):
        row = compute_statistics(graph).row()
        assert "5" in row and "4" in row


class TestHistograms:
    def test_label_histogram_sorted_by_frequency(self, graph):
        hist = label_histogram(graph)
        assert list(hist) == ["a", "b", "c"]
        assert hist["a"] == 3

    def test_degree_histogram(self, graph):
        hist = degree_histogram(graph)
        assert hist == {1: 3, 2: 1, 3: 1}

    def test_label_skew_full_when_few_labels(self, graph):
        assert label_skew(graph, top=3) == pytest.approx(1.0)

    def test_label_skew_partial(self, graph):
        assert label_skew(graph, top=1) == pytest.approx(3 / 5)

    def test_label_skew_empty(self):
        assert label_skew(LabeledGraph([])) == 0.0
