"""Unit tests for :mod:`repro.graph.validation`."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.graph.validation import (
    embeddings_distinct,
    embeddings_pairwise_disjoint,
    is_valid_embedding,
    validate_embedding,
)


@pytest.fixture()
def setting():
    graph = LabeledGraph(["a", "b", "c", "b"], [(0, 1), (1, 2), (0, 3)])
    query = QueryGraph(["a", "b"], [(0, 1)])
    return graph, query


class TestValidateEmbedding:
    def test_valid(self, setting):
        graph, query = setting
        validate_embedding(graph, query, (0, 1))
        validate_embedding(graph, query, (0, 3))

    def test_wrong_length(self, setting):
        graph, query = setting
        with pytest.raises(GraphError, match="entries"):
            validate_embedding(graph, query, (0,))

    def test_not_injective(self, setting):
        graph, query = setting
        q2 = QueryGraph(["b", "b"], [(0, 1)])
        with pytest.raises(GraphError, match="both mapped"):
            validate_embedding(graph, q2, (1, 1))

    def test_nonexistent_vertex(self, setting):
        graph, query = setting
        with pytest.raises(GraphError, match="nonexistent"):
            validate_embedding(graph, query, (0, 99))

    def test_label_mismatch(self, setting):
        graph, query = setting
        with pytest.raises(GraphError, match="label mismatch"):
            validate_embedding(graph, query, (0, 2))

    def test_missing_edge(self, setting):
        graph, query = setting
        # v1 ("b") and v3 ("b") both carry label b, but (2-"c",3) has no edge.
        q2 = QueryGraph(["b", "b"], [(0, 1)])
        with pytest.raises(GraphError, match="no data edge"):
            validate_embedding(graph, q2, (1, 3))

    def test_is_valid_true_false(self, setting):
        graph, query = setting
        assert is_valid_embedding(graph, query, (0, 1))
        assert not is_valid_embedding(graph, query, (0, 2))


class TestCollectionInvariants:
    def test_distinct_true(self):
        assert embeddings_distinct([(0, 1), (1, 2)])

    def test_distinct_false_on_same_vertex_set(self):
        assert not embeddings_distinct([(0, 1), (1, 0)])

    def test_disjoint_true(self):
        assert embeddings_pairwise_disjoint([(0, 1), (2, 3)])

    def test_disjoint_false(self):
        assert not embeddings_pairwise_disjoint([(0, 1), (1, 2)])

    def test_empty_collections(self):
        assert embeddings_distinct([])
        assert embeddings_pairwise_disjoint([])
