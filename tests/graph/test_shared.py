"""Tests for :mod:`repro.graph.shared` — the shared-memory publish/attach layer.

The contract under test: an attached graph is *equivalent* to the published
one (same topology, labels, index-cache state, bit-identical query answers),
its CSR arrays are zero-copy views over the shared segments, and the
lifecycle fails loudly — stale epochs and unlinked segments raise typed
errors instead of serving wrong answers.
"""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest

from repro.core.dsql import DSQL
from repro.exceptions import SharedMemoryError, StaleSegmentError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.graph.shared import attach_graph, publish_graph

K = 3


def _graph() -> LabeledGraph:
    labels = ["a", "b", "c", "a", "b", "c", "a", "b", "c", "a"]
    edges = [
        (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7),
        (7, 8), (8, 9), (0, 2), (1, 3), (4, 6), (5, 7), (0, 9),
    ]
    return LabeledGraph(labels, edges, name="shared-test")


def _queries():
    return [
        QueryGraph(["a", "b"], [(0, 1)]),
        QueryGraph(["b", "c"], [(0, 1)]),
        QueryGraph(["a", "b", "c"], [(0, 1), (1, 2)]),
    ]


@pytest.fixture
def source_graph():
    return _graph()


@pytest.fixture
def published(source_graph):
    pub = publish_graph(source_graph)
    yield pub
    pub.close()
    pub.unlink()


class TestRoundTrip:
    # Teardown discipline: extract plain-Python facts from the attached
    # graph, drop every reference to it, then close the attachment —
    # close() refuses (typed error) while views are still referenced.

    def test_topology_and_labels_survive(self, source_graph, published):
        attachment = attach_graph(published.descriptor)
        got = attachment.graph
        facts = {
            "num_vertices": got.num_vertices,
            "num_edges": got.num_edges,
            "labels": list(got.labels),
            "edges": list(got.edges()),
            "neighbors": [got.neighbors(v) for v in got.vertices()],
            "degrees": [got.degree(v) for v in got.vertices()],
        }
        del got
        attachment.close()
        assert facts["num_vertices"] == source_graph.num_vertices
        assert facts["num_edges"] == source_graph.num_edges
        assert facts["labels"] == list(source_graph.labels)
        assert facts["edges"] == list(source_graph.edges())
        assert facts["neighbors"] == [
            source_graph.neighbors(v) for v in source_graph.vertices()
        ]
        assert facts["degrees"] == [
            source_graph.degree(v) for v in source_graph.vertices()
        ]

    def test_query_results_bit_identical(self, source_graph, published):
        attachment = attach_graph(published.descriptor)
        session = DSQL(attachment.graph, k=K)
        shared = [r.to_dict() for r in session.query_many(_queries())]
        del session
        attachment.close()
        serial = [r.to_dict() for r in DSQL(source_graph, k=K).query_many(_queries())]
        assert shared == serial

    def test_arrays_are_views_not_copies(self, published):
        attachment = attach_graph(published.descriptor)
        backend = attachment.graph.backend
        # A zero-copy view has no owndata flag and is read-only; a
        # silent copy would defeat the N-workers-one-graph point.
        flags = [
            (array.flags.owndata, array.flags.writeable)
            for array in (backend.indptr, backend.indices, backend.label_ids)
        ]
        del backend
        attachment.close()
        assert all(flags_pair == (False, False) for flags_pair in flags)

    def test_index_cache_preseeded_with_same_epoch(self, source_graph, published):
        cache = source_graph.index_cache()
        attachment = attach_graph(published.descriptor)
        got = attachment.graph.index_cache()
        facts = {
            "epoch": got.epoch,
            "label_index": dict(got.label_index),
            "signature_masks": list(got.signature_masks),
        }
        del got
        attachment.close()
        assert facts["epoch"] == cache.epoch == published.descriptor.epoch
        assert facts["label_index"] == cache.label_index
        assert facts["signature_masks"] == list(cache.signature_masks)

    def test_nbytes_accounts_for_arrays(self, published):
        backend = _graph().backend
        floor = sum(
            np.asarray(arr).nbytes
            for arr in (backend.indptr, backend.indices, backend.label_ids)
        )
        assert published.nbytes >= floor


class TestLifecycle:
    def test_attach_after_unlink_raises(self):
        pub = publish_graph(_graph())
        descriptor = pub.descriptor
        pub.close()
        pub.unlink()
        with pytest.raises(SharedMemoryError):
            attach_graph(descriptor)

    def test_stale_epoch_raises(self, published):
        forged = dataclasses.replace(
            published.descriptor, epoch=published.descriptor.epoch + 1
        )
        with pytest.raises(StaleSegmentError):
            attach_graph(forged)

    def test_stale_is_a_shared_memory_error(self):
        assert issubclass(StaleSegmentError, SharedMemoryError)

    def test_publish_close_unlink_idempotent(self):
        pub = publish_graph(_graph())
        pub.close()
        pub.close()
        pub.unlink()
        pub.unlink()

    def test_close_with_live_views_raises_typed_error(self, published):
        attachment = attach_graph(published.descriptor)
        backend = attachment.graph.backend
        indptr = backend.indptr  # keep a live view across the close
        with pytest.raises(SharedMemoryError):
            attachment.close()
        # After the caller drops its views, the same close succeeds.
        del backend, indptr
        attachment.close()

    def test_attachment_close_idempotent(self, published):
        attachment = attach_graph(published.descriptor)
        attachment.close()
        attachment.close()
        assert attachment.graph is None

    def test_unlink_while_attached_keeps_mapping_alive(self):
        # POSIX shm: the attached mapping outlives the name. This is what
        # lets the worker pool unlink eagerly at close() without waiting
        # for every worker to drop its mapping first.
        graph = _graph()
        pub = publish_graph(graph)
        attachment = attach_graph(pub.descriptor)
        pub.close()
        pub.unlink()
        try:
            result = DSQL(attachment.graph, k=K).query(_queries()[0])
            reference = DSQL(graph, k=K).query(_queries()[0])
            assert result.to_dict() == reference.to_dict()
        finally:
            attachment.close()

    def test_republish_same_graph_keeps_epoch_changes_token(self, source_graph, published):
        # Segment names must never collide across publications, but the
        # epoch is the index cache's identity — republishing the same live
        # graph keeps it, so existing descriptors stay attachable-by-epoch.
        second = publish_graph(source_graph)
        try:
            assert second.descriptor.token != published.descriptor.token
            assert second.descriptor.epoch == published.descriptor.epoch
        finally:
            second.close()
            second.unlink()


def _attach_probe(descriptor_path: str) -> None:
    """Spawn-context child body: attach, sanity-check, close, exit 0."""
    import pickle as _pickle

    from repro.graph.shared import attach_graph as _attach

    with open(descriptor_path, "rb") as fh:
        descriptor = _pickle.load(fh)
    attachment = _attach(descriptor)
    assert attachment.graph.num_vertices > 0
    attachment.close()


class TestForeignTrackerSurvival:
    """A worker's exit must never unlink the publisher's segments.

    Python's shared-memory resource tracker registers *attachments* too;
    in a process with its own tracker, that registration would unlink the
    segments at process exit unless the attach undoes it
    (``_unregister_attachment``). These tests fail loudly if a Python
    tracker-behavior change ever restores the unlink-on-exit behavior.
    """

    def _assert_still_attachable(self, source_graph, published):
        attachment = attach_graph(published.descriptor)
        try:
            assert attachment.graph.num_edges == source_graph.num_edges
        finally:
            attachment.close()

    def test_segments_survive_spawn_worker_exit(
        self, source_graph, published, tmp_path
    ):
        import multiprocessing

        path = tmp_path / "descriptor.pkl"
        path.write_bytes(pickle.dumps(published.descriptor))
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_attach_probe, args=(str(path),))
        proc.start()
        proc.join(120)
        assert proc.exitcode == 0
        self._assert_still_attachable(source_graph, published)

    def test_segments_survive_independent_process_exit(
        self, source_graph, published, tmp_path
    ):
        # An independently launched interpreter runs its OWN resource
        # tracker — the exact process shape whose exit would unlink the
        # publisher's segments without the attach-side unregister. The
        # child stops its tracker synchronously so any cleanup it would
        # do has happened before the parent re-attaches.
        import os
        import subprocess
        import sys
        from pathlib import Path

        path = tmp_path / "descriptor.pkl"
        path.write_bytes(pickle.dumps(published.descriptor))
        script = "\n".join(
            [
                "import pickle, sys",
                "from multiprocessing import resource_tracker",
                "from repro.graph.shared import attach_graph",
                "with open(sys.argv[1], 'rb') as fh:",
                "    descriptor = pickle.load(fh)",
                "attachment = attach_graph(descriptor)",
                "assert attachment.graph.num_vertices > 0",
                "attachment.close()",
                "tracker = getattr(resource_tracker, '_resource_tracker', None)",
                "if tracker is not None and getattr(tracker, '_fd', None) is not None:",
                "    tracker._stop()",
            ]
        )
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr
        self._assert_still_attachable(source_graph, published)
