"""Unit tests for :mod:`repro.graph.query_graph`."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(QueryError, match="at least one"):
            QueryGraph([])

    def test_disconnected_rejected(self):
        with pytest.raises(QueryError, match="connected"):
            QueryGraph(["a", "b", "c"], [(0, 1)])

    def test_single_node_ok(self):
        q = QueryGraph(["a"])
        assert q.size == 1

    def test_connected_ok(self):
        q = QueryGraph(["a", "b", "c"], [(0, 1), (1, 2)])
        assert q.size == 3


class TestHelpers:
    def test_size_equals_num_vertices(self):
        q = QueryGraph(["a", "b"], [(0, 1)])
        assert q.size == q.num_vertices == 2

    def test_from_graph(self):
        g = LabeledGraph(["a", "b"], [(0, 1)], name="g")
        q = QueryGraph.from_graph(g)
        assert isinstance(q, QueryGraph)
        assert q.size == 2
        assert q.name == "g"

    def test_from_graph_disconnected_rejected(self):
        g = LabeledGraph(["a", "b"], [])
        with pytest.raises(QueryError):
            QueryGraph.from_graph(g)

    def test_edge_tuples_sorted(self):
        q = QueryGraph(["a", "b", "c"], [(2, 1), (1, 0)])
        assert q.edge_tuples() == ((0, 1), (1, 2))

    def test_canonical_key_equal_for_equal_queries(self):
        q1 = QueryGraph(["a", "b"], [(0, 1)])
        q2 = QueryGraph(["a", "b"], [(1, 0)])
        assert q1.canonical_key() == q2.canonical_key()

    def test_canonical_key_differs_on_labels(self):
        q1 = QueryGraph(["a", "b"], [(0, 1)])
        q2 = QueryGraph(["a", "c"], [(0, 1)])
        assert q1.canonical_key() != q2.canonical_key()
