"""Typed rejection of disconnected queries (InvalidQueryError)."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidQueryError, QueryError, ReproError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.isomorphism.qsearch import connected_search_order


class _RawQuery:
    """Query-shaped view of a plain graph, bypassing QueryGraph validation."""

    def __init__(self, graph: LabeledGraph) -> None:
        self._graph = graph

    @property
    def size(self) -> int:
        return self._graph.num_vertices

    def neighbors(self, u: int):
        return self._graph.neighbors(u)


def test_query_graph_rejects_disconnected_with_component():
    with pytest.raises(InvalidQueryError) as info:
        QueryGraph(["A", "B", "C"], [(0, 1)])
    err = info.value
    assert err.component == (2,)
    assert "connected" in str(err)
    assert "[2]" in str(err)


def test_invalid_query_error_is_a_query_error():
    # The service layer maps QueryError -> HTTP 400; the subclass rides along.
    assert issubclass(InvalidQueryError, QueryError)
    assert issubclass(InvalidQueryError, ReproError)


def test_connected_search_order_rejects_disconnected_with_component():
    raw = _RawQuery(LabeledGraph(["A", "B", "C", "D"], [(0, 1), (2, 3)]))
    with pytest.raises(InvalidQueryError) as info:
        connected_search_order(raw, [0, 1, 2, 3])
    err = info.value
    assert err.component == (2, 3)
    assert "unreachable" in str(err)
    assert "[2, 3]" in str(err)


def test_connected_search_order_component_follows_root():
    raw = _RawQuery(LabeledGraph(["A", "B", "C", "D"], [(0, 1), (2, 3)]))
    with pytest.raises(InvalidQueryError) as info:
        connected_search_order(raw, [2, 3, 0, 1])
    assert info.value.component == (0, 1)


def test_connected_query_still_ordered():
    query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
    order = connected_search_order(query, [0, 1, 2])
    assert sorted(order) == [0, 1, 2]
    assert order[0] == 0
